//! A blocking client for the serve protocol.
//!
//! Two usage levels:
//!
//! - [`Client::request`] — one request, collect its binary chunks,
//!   return when the envelope arrives. What the CLI examples and most
//!   tests use.
//! - [`Client::send_json`] + [`Client::read_message`] — raw pipelining:
//!   push several requests, then demultiplex the interleaved responses
//!   yourself by request id ([`BlockChunk::id`] on chunks,
//!   [`envelope_id`] on envelopes). What the soak test and `servebench`
//!   use.

use crate::frame::{read_frame, write_frame, FrameError, KIND_BLOCK, KIND_JSON};
use crate::json::Json;
use crate::protocol::{decode_chunk, BlockChunk};
use crate::server::{Endpoint, Stream};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};

/// Everything that can go wrong on the client side of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport-level failure while sending.
    Io(String),
    /// Framing failure while receiving.
    Frame(FrameError),
    /// The frames arrived but violated the protocol (bad chunk header,
    /// connection closed before the envelope, ...).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// One inbound frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A response envelope, as raw bytes (kept raw so transcript tests
    /// can compare byte-for-byte; parse on demand with [`Json`]).
    Envelope(Vec<u8>),
    /// A binary packed-permutation chunk.
    Chunk(BlockChunk),
}

/// A collected response: every chunk of the request plus its envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The raw envelope bytes.
    pub envelope: Vec<u8>,
    /// The request's binary chunks, in arrival order.
    pub chunks: Vec<BlockChunk>,
}

impl Response {
    /// Parses the envelope.
    pub fn json(&self) -> Result<Json, ClientError> {
        Json::parse(&self.envelope).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Whether the envelope reports `"status":"ok"`.
    pub fn is_ok(&self) -> bool {
        matches!(
            self.json().ok().and_then(|j| match j.get("status") {
                Some(Json::Str(s)) => Some(s == "ok"),
                _ => None,
            }),
            Some(true)
        )
    }

    /// All chunk words reassembled in `base` order — the shard-count-
    /// independent view of a `block` or `random-stream` payload.
    pub fn words(&self) -> Vec<u64> {
        let mut chunks: Vec<&BlockChunk> = self.chunks.iter().collect();
        chunks.sort_by_key(|c| c.base);
        chunks
            .iter()
            .flat_map(|c| c.words.iter().copied())
            .collect()
    }
}

/// The request id an envelope's metrics trailer echoes.
pub fn envelope_id(envelope: &[u8]) -> Option<u64> {
    Json::parse(envelope)
        .ok()?
        .get("metrics")?
        .get("id")?
        .as_u64()
}

/// A blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one JSON request frame (flushes immediately).
    pub fn send_json(&mut self, body: &str) -> io::Result<()> {
        write_frame(&mut self.writer, KIND_JSON, body.as_bytes())?;
        self.writer.flush()
    }

    /// Sends one raw frame of arbitrary kind — the fuzz tests' hatch
    /// for hostile traffic.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one frame; `Ok(None)` when the server closed cleanly.
    pub fn read_message(&mut self) -> Result<Option<Message>, ClientError> {
        match read_frame(&mut self.reader)? {
            None => Ok(None),
            Some((KIND_BLOCK, payload)) => Ok(Some(Message::Chunk(
                decode_chunk(&payload).map_err(ClientError::Protocol)?,
            ))),
            Some((_, payload)) => Ok(Some(Message::Envelope(payload))),
        }
    }

    /// Sends `body` and collects the full response: binary chunks
    /// until the envelope arrives. Only valid when this request is the
    /// sole one in flight (chunks of other ids are a protocol error);
    /// pipeline manually via [`Client::send_json`] /
    /// [`Client::read_message`] otherwise.
    pub fn request(&mut self, body: &str) -> Result<Response, ClientError> {
        self.send_json(body)?;
        let mut chunks = Vec::new();
        loop {
            match self.read_message()? {
                None => {
                    return Err(ClientError::Protocol(
                        "connection closed before the envelope arrived".into(),
                    ))
                }
                Some(Message::Chunk(chunk)) => chunks.push(chunk),
                Some(Message::Envelope(envelope)) => return Ok(Response { envelope, chunks }),
            }
        }
    }

    /// Half-closes the write side, telling the server this client is
    /// done submitting (its reader sees a clean EOF).
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }
}
