//! An in-process chaos proxy for hostile-network testing.
//!
//! [`ChaosProxy`] sits between a client and a real server, forwarding
//! TCP bytes verbatim — except that each accepted connection draws the
//! next [`Fault`] from a *seeded, finite schedule* and applies it to
//! the server→client direction:
//!
//! | fault                         | what the client experiences        |
//! |-------------------------------|------------------------------------|
//! | [`Fault::Clean`]              | a perfect network                  |
//! | [`Fault::Reset`]              | connection torn down mid-frame     |
//! | [`Fault::Delay`]              | a fixed stall before the response  |
//! | [`Fault::Truncate`]           | response cut short, then EOF       |
//! | [`Fault::Corrupt`]            | one framing byte flipped           |
//! | [`Fault::Trickle`]            | bytes dripping in one at a time    |
//!
//! Two design rules keep the harness deterministic:
//!
//! 1. **Schedules are finite.** Once the queue drains, every later
//!    connection is clean forever. A retrying client whose attempt
//!    budget exceeds the number of faulted connections therefore
//!    *provably* converges, whatever the interleaving.
//! 2. **Corruption targets framing bytes only.** The wire format is
//!    frozen (golden transcripts pin it) and carries no payload
//!    checksum, so a flipped payload byte would be silent. Flipping
//!    the length prefix or kind byte instead guarantees a pinned
//!    [`crate::FrameError`] — loud, typed, and testable.
//!
//! The proxy mirrors the server's own thread-accounting discipline:
//! [`ChaosProxy::stop`] joins every thread it spawned and the returned
//! [`ChaosReport`] proves it (`threads_spawned == threads_joined`).

use crate::server::{Endpoint, Listener, Stream};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One per-connection fault, applied to the server→client byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything untouched.
    Clean,
    /// Forward `after` bytes toward the client, then abort both
    /// directions — the client sees its response die mid-frame.
    Reset {
        /// Server→client bytes forwarded before the teardown.
        after: usize,
    },
    /// Sleep once, before the first server→client byte, then forward
    /// cleanly. Long enough delays trip read deadlines.
    Delay {
        /// The one-time stall, in milliseconds.
        ms: u64,
    },
    /// Forward `after` bytes toward the client, then half-close the
    /// client-facing write side — a clean EOF in the middle of a frame.
    Truncate {
        /// Server→client bytes forwarded before the EOF.
        after: usize,
    },
    /// XOR one byte of the server→client stream, then keep forwarding.
    /// Aim `at` at framing bytes (length prefix offsets 0–3, kind byte
    /// offset 4) so the damage is *detectable* — the payload carries no
    /// checksum.
    Corrupt {
        /// Absolute offset into the server→client byte stream.
        at: usize,
        /// Non-zero XOR mask applied to that byte.
        mask: u8,
    },
    /// Forward server→client bytes one at a time with a pause between
    /// each — the slow-loris read pattern.
    Trickle {
        /// Pause between bytes, in microseconds.
        delay_us: u64,
    },
}

/// What a [`ChaosProxy`] did over its lifetime, returned by
/// [`ChaosProxy::stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Client connections accepted.
    pub conns_accepted: u64,
    /// Connections that drew a non-[`Fault::Clean`] schedule entry.
    pub faults_injected: u64,
    /// Threads the proxy spawned (pumps + accept loop).
    pub threads_spawned: u64,
    /// Threads [`ChaosProxy::stop`] actually joined — must equal
    /// [`ChaosReport::threads_spawned`] or the proxy leaked.
    pub threads_joined: u64,
}

struct ProxyShared {
    upstream: Mutex<Endpoint>,
    schedule: Mutex<VecDeque<Fault>>,
    stop: AtomicBool,
    conns_accepted: AtomicU64,
    faults_injected: AtomicU64,
    threads_spawned: AtomicU64,
    threads_joined: AtomicU64,
    /// Clones of every live stream (both legs of every conn), so
    /// `stop` can shoot down blocked pumps. Never pruned — entries for
    /// finished conns are just dead fds; a test-lifetime proxy carries
    /// at most a few dozen.
    streams: Mutex<Vec<Stream>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// The fault-injecting TCP proxy. See the [module docs](self).
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    endpoint: Endpoint,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listens on an ephemeral localhost TCP port and proxies every
    /// accepted connection to `upstream`, consuming one `schedule`
    /// entry per connection (then [`Fault::Clean`] forever).
    pub fn spawn(upstream: Endpoint, schedule: &[Fault]) -> io::Result<ChaosProxy> {
        let listener = Listener::bind_tcp("127.0.0.1:0")?;
        let endpoint = listener.endpoint()?;
        let shared = Arc::new(ProxyShared {
            upstream: Mutex::new(upstream),
            schedule: Mutex::new(schedule.iter().copied().collect()),
            stop: AtomicBool::new(false),
            conns_accepted: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            threads_spawned: AtomicU64::new(0),
            threads_joined: AtomicU64::new(0),
            streams: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        shared.threads_spawned.fetch_add(1, Ordering::Relaxed);
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(ChaosProxy {
            shared,
            endpoint,
            accept: Some(accept),
        })
    }

    /// The endpoint clients should connect to (the proxy's own).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Repoints *future* connections at a new upstream — how the
    /// server-restart tests splice in a replacement server without the
    /// client learning a new address. Established connections keep
    /// their original upstream.
    pub fn set_upstream(&self, upstream: Endpoint) {
        *self.shared.upstream.lock().expect("upstream lock") = upstream;
    }

    /// Appends more faults to the schedule.
    pub fn push_faults(&self, faults: &[Fault]) {
        self.shared
            .schedule
            .lock()
            .expect("schedule lock")
            .extend(faults.iter().copied());
    }

    /// Stops accepting, shoots down every live connection, joins every
    /// thread, and reports. Idempotent teardown: safe even when every
    /// pump already exited.
    pub fn stop(mut self) -> ChaosReport {
        self.shutdown();
        self.report()
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocked accept(); the accept loop sees the flag and
        // drops the wake connection without proxying it.
        let _ = Stream::connect(&self.endpoint);
        if let Some(accept) = self.accept.take() {
            if accept.join().is_ok() {
                self.shared.threads_joined.fetch_add(1, Ordering::Relaxed);
            }
        }
        for stream in self.shared.streams.lock().expect("streams lock").drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let pumps: Vec<_> = self
            .shared
            .pumps
            .lock()
            .expect("pumps lock")
            .drain(..)
            .collect();
        for pump in pumps {
            if pump.join().is_ok() {
                self.shared.threads_joined.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn report(&self) -> ChaosReport {
        ChaosReport {
            conns_accepted: self.shared.conns_accepted.load(Ordering::Relaxed),
            faults_injected: self.shared.faults_injected.load(Ordering::Relaxed),
            threads_spawned: self.shared.threads_spawned.load(Ordering::Relaxed),
            threads_joined: self.shared.threads_joined.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(shared: &Arc<ProxyShared>, listener: &Listener) {
    loop {
        let Ok(client) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let fault = shared
            .schedule
            .lock()
            .expect("schedule lock")
            .pop_front()
            .unwrap_or(Fault::Clean);
        if fault != Fault::Clean {
            shared.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        let upstream = shared.upstream.lock().expect("upstream lock").clone();
        let Ok(server) = Stream::connect(&upstream) else {
            // Upstream is down: the client sees an immediate EOF —
            // exactly what a dead server looks like through a real
            // network — and its next frame read fails loudly.
            let _ = client.shutdown(std::net::Shutdown::Both);
            continue;
        };
        spawn_pumps(shared, client, server, fault);
    }
}

/// Registers both legs for teardown and spawns the two pump threads:
/// client→server always clean, server→client through the fault.
fn spawn_pumps(shared: &Arc<ProxyShared>, client: Stream, server: Stream, fault: Fault) {
    let (Ok(client_reg), Ok(server_reg)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(std::net::Shutdown::Both);
        let _ = server.shutdown(std::net::Shutdown::Both);
        return;
    };
    let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(std::net::Shutdown::Both);
        let _ = server.shutdown(std::net::Shutdown::Both);
        return;
    };
    {
        let mut streams = shared.streams.lock().expect("streams lock");
        streams.push(client_reg);
        streams.push(server_reg);
    }
    let mut pumps = shared.pumps.lock().expect("pumps lock");
    shared.threads_spawned.fetch_add(2, Ordering::Relaxed);
    if let Ok(up) = std::thread::Builder::new()
        .name("chaos-up".into())
        .spawn(move || pump_clean(client_rx, server))
    {
        pumps.push(up);
    } else {
        shared.threads_spawned.fetch_sub(1, Ordering::Relaxed);
    }
    if let Ok(down) = std::thread::Builder::new()
        .name("chaos-down".into())
        .spawn(move || pump_faulted(server_rx, client, fault))
    {
        pumps.push(down);
    } else {
        shared.threads_spawned.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Forwards `from` into `to` verbatim until EOF or error, then
/// half-closes the write side so EOFs propagate end to end.
fn pump_clean(mut from: Stream, mut to: Stream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
    let _ = from.shutdown(std::net::Shutdown::Read);
}

/// The server→client pump: applies one [`Fault`] to the byte stream.
fn pump_faulted(mut from: Stream, mut to: Stream, fault: Fault) {
    let mut offset = 0usize; // absolute position in the server→client stream
    let mut delayed = false;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = buf[..n].to_vec();
        match fault {
            Fault::Clean => {}
            Fault::Delay { ms } => {
                if !delayed {
                    delayed = true;
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
            Fault::Reset { after } => {
                if offset + n > after {
                    let keep = after.saturating_sub(offset);
                    let _ = to.write_all(&chunk[..keep]).and_then(|()| to.flush());
                    let _ = to.shutdown(std::net::Shutdown::Both);
                    let _ = from.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
            Fault::Truncate { after } => {
                if offset + n > after {
                    let keep = after.saturating_sub(offset);
                    let _ = to.write_all(&chunk[..keep]).and_then(|()| to.flush());
                    let _ = to.shutdown(std::net::Shutdown::Write);
                    let _ = from.shutdown(std::net::Shutdown::Read);
                    return;
                }
            }
            Fault::Corrupt { at, mask } => {
                if (offset..offset + n).contains(&at) {
                    chunk[at - offset] ^= mask;
                }
            }
            Fault::Trickle { delay_us } => {
                let mut failed = false;
                for &byte in &chunk {
                    std::thread::sleep(Duration::from_micros(delay_us));
                    if to.write_all(&[byte]).and_then(|()| to.flush()).is_err() {
                        failed = true;
                        break;
                    }
                }
                if failed {
                    break;
                }
                offset += n;
                continue;
            }
        }
        if to.write_all(&chunk).and_then(|()| to.flush()).is_err() {
            break;
        }
        offset += n;
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
    let _ = from.shutdown(std::net::Shutdown::Read);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// A one-connection echo upstream: reads lines, echoes them back.
    fn echo_upstream() -> (Endpoint, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let endpoint = Endpoint::Tcp(listener.local_addr().expect("addr"));
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            if line.trim_end() == "quit" {
                                return; // stop the whole upstream
                            }
                            if writer.write_all(line.as_bytes()).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (endpoint, handle)
    }

    fn roundtrip(endpoint: &Endpoint, line: &str) -> io::Result<String> {
        let mut stream = match Stream::connect(endpoint)? {
            Stream::Tcp(s) => s,
            #[cfg(unix)]
            Stream::Unix(_) => unreachable!("proxy is TCP-only"),
        };
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        Ok(reply)
    }

    #[test]
    fn clean_schedule_forwards_verbatim_and_joins_all_threads() {
        let (upstream, echo) = echo_upstream();
        let proxy = ChaosProxy::spawn(upstream.clone(), &[]).expect("proxy");
        for msg in ["hello", "world"] {
            assert_eq!(
                roundtrip(proxy.endpoint(), msg).expect("roundtrip"),
                format!("{msg}\n")
            );
        }
        let _ = roundtrip(proxy.endpoint(), "quit");
        let report = proxy.stop();
        assert_eq!(report.conns_accepted, 3);
        assert_eq!(report.faults_injected, 0);
        assert_eq!(
            report.threads_spawned, report.threads_joined,
            "proxy leaked threads: {report:?}"
        );
        echo.join().expect("echo upstream");
    }

    #[test]
    fn faults_fire_in_schedule_order_then_clean_forever() {
        let (upstream, echo) = echo_upstream();
        let proxy = ChaosProxy::spawn(
            upstream.clone(),
            &[
                Fault::Truncate { after: 2 },
                Fault::Corrupt { at: 0, mask: 0xFF },
            ],
        )
        .expect("proxy");
        // Conn 1: truncated after 2 bytes — reply is cut short.
        assert_eq!(roundtrip(proxy.endpoint(), "abcdef").expect("read"), "ab");
        // Conn 2: first reply byte XORed with 0xFF (raw read — the
        // flipped byte is deliberately not valid UTF-8).
        let mut stream = match Stream::connect(proxy.endpoint()).expect("connect") {
            Stream::Tcp(s) => s,
            #[cfg(unix)]
            Stream::Unix(_) => unreachable!("proxy is TCP-only"),
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(b"abc\n").expect("send");
        let mut first = [0u8; 1];
        stream.read_exact(&mut first).expect("read corrupted byte");
        assert_eq!(first[0], b'a' ^ 0xFF);
        drop(stream);
        // Conn 3: schedule drained — clean forever.
        assert_eq!(roundtrip(proxy.endpoint(), "abc").expect("read"), "abc\n");
        let _ = roundtrip(proxy.endpoint(), "quit");
        let report = proxy.stop();
        assert_eq!(report.faults_injected, 2);
        assert_eq!(report.threads_spawned, report.threads_joined);
        echo.join().expect("echo upstream");
    }

    #[test]
    fn dead_upstream_is_immediate_eof_not_a_hang() {
        // Bind-then-drop guarantees a dead address.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            Endpoint::Tcp(l.local_addr().expect("addr"))
        };
        let proxy = ChaosProxy::spawn(dead, &[]).expect("proxy");
        // The proxy closes without reading our bytes, so the teardown
        // may surface as a clean EOF or as ECONNRESET — either is an
        // immediate loud failure; a hang is the only wrong answer.
        match roundtrip(proxy.endpoint(), "anyone home") {
            Ok(reply) => assert_eq!(reply, "", "dead upstream must not produce data"),
            Err(e) => assert_ne!(
                e.kind(),
                io::ErrorKind::WouldBlock,
                "must fail fast, not time out: {e}"
            ),
        }
        let report = proxy.stop();
        assert_eq!(report.conns_accepted, 1);
        assert_eq!(report.threads_spawned, report.threads_joined);
    }
}
