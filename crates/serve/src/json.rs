//! A minimal, allocation-bounded JSON reader for untrusted request
//! payloads.
//!
//! The workspace carries no serde (no crates.io access), and every
//! other JSON producer here hand-formats its output — but the server
//! must also *parse* JSON that a hostile client controls. This module
//! is that parser: recursive descent over a byte slice with
//!
//! - a hard nesting-depth cap ([`MAX_DEPTH`]) so a `[[[[…` bomb cannot
//!   blow the stack,
//! - allocations linear in the input (which framing already caps at
//!   [`crate::frame::MAX_FRAME`] bytes),
//! - numbers kept as their raw text — `as_u64` re-parses the digits,
//!   so a 64-bit index never loses precision through an `f64`,
//! - and no panics on any input (pinned by the fuzz suite).

/// Maximum container nesting depth accepted by [`Json::parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys keep insertion order; duplicate
/// keys are retained, [`Json::get`] returns the first.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing bytes after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`: digits only, no sign, fraction,
    /// exponent, or leading zeros beyond a lone `0`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => {
                if raw.len() > 1 && raw.starts_with('0') {
                    return None;
                }
                if !raw.bytes().all(|b| b.is_ascii_digit()) {
                    return None;
                }
                raw.parse().ok()
            }
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, text: &'static [u8], msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the depth cap"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal(b"null", "expected null").map(|_| Json::Null),
            Some(b't') => self
                .literal(b"true", "expected true")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal(b"false", "expected false")
                .map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        Ok(Json::Num(raw.to_string()))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("unterminated \\u"))?;
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = (v << 4) | digit as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.literal(b"\\u", "lone high surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Validate one UTF-8 scalar and copy it through.
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        0x00..=0x7F => 1,
                        0xC2..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF4 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let chunk = rest
                        .get(..len)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_shape() {
        let v = Json::parse(br#"{"id":7,"cmd":"block","n":8,"start":0,"end":40320}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("block"));
        assert_eq!(v.get("end").and_then(Json::as_u64), Some(40320));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = Json::parse(b"18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // One past u64::MAX parses as a number but not as a u64.
        let v = Json::parse(b"18446744073709551616").unwrap();
        assert_eq!(v.as_u64(), None);
        // Signs, fractions, exponents and leading zeros are not indices.
        for raw in ["-3", "1.5", "1e3", "007"] {
            assert_eq!(Json::parse(raw.as_bytes()).unwrap().as_u64(), None, "{raw}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::parse(br#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }

    #[test]
    fn depth_bomb_is_rejected_cleanly() {
        let bomb: Vec<u8> = std::iter::repeat_n(b'[', 100_000).collect();
        let e = Json::parse(&bomb).unwrap_err();
        assert_eq!(e.msg, "nesting deeper than the depth cap");
        // Depth at the cap still parses.
        let mut ok = vec![b'['; MAX_DEPTH];
        ok.push(b'1');
        ok.extend(std::iter::repeat_n(b']', MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn malformed_documents_error_with_positions() {
        for bad in [
            &b"{"[..],
            b"{\"a\"}",
            b"[1,]",
            b"\"unterminated",
            b"nul",
            b"1 2",
            b"{\"a\":}",
            b"\x80",
            b"\"\x80\"",
            b"\"\\ud800\"",
            b"\"\\q\"",
            b"",
            b"  ",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.pos <= bad.len(), "{bad:?}: {e}");
        }
        // "01" parses leniently as a number but is rejected as an
        // index — leading zeros never smuggle past as_u64.
        assert_eq!(Json::parse(b"01").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_resolve_to_the_first() {
        let v = Json::parse(br#"{"n":4,"n":9}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
    }
}
