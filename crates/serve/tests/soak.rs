//! Concurrency soak: four clients pipeline interleaved request mixes
//! at pool sizes 1 / 2 / 4 / 8 and every response must be byte-
//! identical to what the libraries produce in-process. Block words are
//! additionally compared *across* pool sizes — sharding may change how
//! chunks are cut, never what they carry.

use hwperm_core::{FaultPolicy, GuardedPermSource, RandomPermSource, SoftwareRandomSource};
use hwperm_factoradic::{rank_u64, BlockDecoder, Unranker};
use hwperm_serve::{
    envelope, envelope_id, error_result, spawn, BlockChunk, Client, Endpoint, Listener, Message,
    ServeOptions, CHUNK_FLAG_LAST, STREAM_SPOT_CHECK_EVERY,
};
use hwperm_verify::shard_ranges;
use std::collections::HashMap;

/// One pipelined request and everything the server must send back.
struct Step {
    id: u64,
    req: String,
    /// The exact envelope payload, built with the exported
    /// `protocol::envelope` from library-computed results.
    env: Vec<u8>,
    /// For block / random-stream: the packed words, in base order.
    words: Option<Vec<u64>>,
    /// For block / random-stream: how many chunks carry them.
    chunks: Option<u64>,
}

fn render_perm(perm: &[u32]) -> String {
    let body = perm
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!("[{body}]")
}

/// The server's own shard arithmetic, reproduced from the exported
/// `shard_ranges`: at most one shard per worker, never more shards
/// than chunks, chunk count summed over non-empty shards.
fn expected_block_chunks(workers: usize, count: u64, chunk: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let shard_count = (workers as u64).min(count.div_ceil(chunk)).max(1) as usize;
    shard_ranges(count as usize, shard_count)
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(|r| ((r.end - r.start) as u64).div_ceil(chunk))
        .sum()
}

fn direct_block_words(n: usize, start: u64, end: u64) -> Vec<u64> {
    let mut bytes = Vec::new();
    BlockDecoder::new(n).decode_le_bytes_into(start..end, &mut bytes);
    bytes
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte word")))
        .collect()
}

fn unrank_step(id: u64, n: usize, index: u64) -> Step {
    let req = format!("{{\"id\":{id},\"cmd\":\"unrank\",\"n\":{n},\"index\":{index}}}");
    let perm = Unranker::new(n).unrank(index);
    let results = format!(
        "{{\"type\":\"unrank\",\"n\":{n},\"index\":{index},\"perm\":{},\"packed\":{}}}",
        render_perm(perm.as_slice()),
        perm.pack_u64(),
    );
    let env = envelope("unrank", true, &results, id, 0, (req.len() + 5) as u64);
    Step {
        id,
        req,
        env,
        words: None,
        chunks: None,
    }
}

fn rank_step(id: u64, n: usize, index: u64) -> Step {
    let perm = Unranker::new(n).unrank(index);
    let req = format!(
        "{{\"id\":{id},\"cmd\":\"rank\",\"perm\":{}}}",
        render_perm(perm.as_slice()),
    );
    let results = format!(
        "{{\"type\":\"rank\",\"n\":{n},\"perm\":{},\"index\":{}}}",
        render_perm(perm.as_slice()),
        rank_u64(&perm),
    );
    let env = envelope("rank", true, &results, id, 0, (req.len() + 5) as u64);
    Step {
        id,
        req,
        env,
        words: None,
        chunks: None,
    }
}

fn block_step(id: u64, workers: usize, n: usize, start: u64, end: u64, chunk: u64) -> Step {
    let req = format!(
        "{{\"id\":{id},\"cmd\":\"block\",\"n\":{n},\"start\":{start},\"end\":{end},\
         \"chunk\":{chunk}}}"
    );
    let chunks = expected_block_chunks(workers, end - start, chunk);
    let results = format!(
        "{{\"type\":\"block\",\"n\":{n},\"start\":{start},\"end\":{end},\"chunk\":{chunk},\
         \"chunks\":{chunks},\"words\":{}}}",
        end - start,
    );
    let env = envelope("block", true, &results, id, 0, (req.len() + 5) as u64);
    Step {
        id,
        req,
        env,
        words: Some(direct_block_words(n, start, end)),
        chunks: Some(chunks),
    }
}

fn stream_step(id: u64, n: usize, count: u64, seed: u64, chunk: u64) -> Step {
    let req = format!(
        "{{\"id\":{id},\"cmd\":\"random-stream\",\"n\":{n},\"count\":{count},\"seed\":{seed},\
         \"chunk\":{chunk}}}"
    );
    let mut source = GuardedPermSource::with_options(
        SoftwareRandomSource::new(n, seed),
        FaultPolicy::Fallback,
        STREAM_SPOT_CHECK_EVERY,
        seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
    );
    let mut words = vec![0u64; count as usize];
    source.fill_packed_u64(&mut words);
    let guard = source.stats();
    let chunks = count.div_ceil(chunk);
    let results = format!(
        "{{\"type\":\"random-stream\",\"n\":{n},\"count\":{count},\"seed\":{seed},\
         \"chunk\":{chunk},\"chunks\":{chunks},\"words\":{count},\
         \"guard\":{{\"detected\":{},\"retried\":{},\"fell_back\":{}}}}}",
        guard.detected, guard.retried, guard.fell_back,
    );
    let env = envelope(
        "random-stream",
        true,
        &results,
        id,
        0,
        (req.len() + 5) as u64,
    );
    Step {
        id,
        req,
        env,
        words: Some(words),
        chunks: Some(chunks),
    }
}

fn verify_step(id: u64, n: usize, jobs: usize, total: u64) -> Step {
    let req = format!("{{\"id\":{id},\"cmd\":\"verify\",\"n\":{n},\"jobs\":{jobs}}}");
    let results = format!(
        "{{\"type\":\"verify\",\"n\":{n},\"workers\":{jobs},\"total\":{total},\"verdict\":\"ok\"}}"
    );
    let env = envelope("verify", true, &results, id, 0, (req.len() + 5) as u64);
    Step {
        id,
        req,
        env,
        words: None,
        chunks: None,
    }
}

fn bad_cmd_step(id: u64) -> Step {
    let req = format!("{{\"id\":{id},\"cmd\":\"frobnicate\"}}");
    let results = error_result(
        "unknown cmd \"frobnicate\" (commands: unrank | rank | block | random-stream | \
         verify | stats | shutdown)",
    );
    let env = envelope("error", false, &results, id, 0, (req.len() + 5) as u64);
    Step {
        id,
        req,
        env,
        words: None,
        chunks: None,
    }
}

/// Each client's mix: every request type, a deliberate error, and
/// block / stream parameters that vary per client so concurrent work
/// never accidentally aliases.
fn client_steps(c: u64, workers: usize) -> Vec<Step> {
    vec![
        unrank_step(1, 5, (17 * c + 3) % 120),
        rank_step(2, 5, (31 * c + 7) % 120),
        block_step(3, workers, 4, c, 24, 5),
        stream_step(4, 5, 10 + c, 1000 + c, 4),
        unrank_step(5, 3, c),
        block_step(6, workers, 5, 0, 120, 16),
        bad_cmd_step(7),
        rank_step(8, 3, 0),
        stream_step(9, 4, 3, c, 8),
        block_step(10, workers, 3, 1, 6, 2),
        unrank_step(11, 6, (101 * c) % 720),
        verify_step(12, 3, 2, 6),
    ]
}

/// Pipelines every step, demultiplexes the interleaved responses by
/// request id, and checks envelopes byte-for-byte and chunk payloads
/// word-for-word. Returns the words per request id for cross-pool
/// comparison.
fn run_client(endpoint: &Endpoint, steps: &[Step]) -> HashMap<u64, Vec<u64>> {
    let mut client = Client::connect(endpoint).expect("connect");
    for step in steps {
        client.send_json(&step.req).expect("send");
    }
    let mut envelopes: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut chunks: HashMap<u64, Vec<BlockChunk>> = HashMap::new();
    while envelopes.len() < steps.len() {
        match client
            .read_message()
            .expect("read")
            .expect("connection open until all responses arrive")
        {
            Message::Envelope(env) => {
                let id = envelope_id(&env).expect("envelope carries metrics.id");
                assert!(envelopes.insert(id, env).is_none(), "duplicate envelope");
            }
            Message::Chunk(chunk) => chunks.entry(chunk.id).or_default().push(chunk),
        }
    }

    let mut words_by_id = HashMap::new();
    for step in steps {
        let env = &envelopes[&step.id];
        assert_eq!(
            env,
            &step.env,
            "id {}: envelope diverges from in-process result\n got: {}\nwant: {}",
            step.id,
            String::from_utf8_lossy(env),
            String::from_utf8_lossy(&step.env),
        );
        let Some(expected_words) = &step.words else {
            assert!(!chunks.contains_key(&step.id), "unexpected chunks");
            continue;
        };
        let mut got = chunks.remove(&step.id).unwrap_or_default();
        got.sort_by_key(|c| c.base);
        assert_eq!(got.len() as u64, step.chunks.expect("chunk count"));
        let last = got
            .iter()
            .filter(|c| c.flags & CHUNK_FLAG_LAST != 0)
            .count();
        assert_eq!(last, 1, "exactly one chunk carries the LAST flag");
        assert!(
            got.last().expect("at least one chunk").flags & CHUNK_FLAG_LAST != 0,
            "LAST flag sits on the highest-base chunk"
        );
        let mut seqs: Vec<u64> = got.iter().map(|c| c.seq).collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (0..got.len() as u64).collect::<Vec<_>>(),
            "chunk sequence numbers are a permutation of 0..chunks"
        );
        let got_words: Vec<u64> = got.iter().flat_map(|c| c.words.iter().copied()).collect();
        assert_eq!(&got_words, expected_words, "id {}: words diverge", step.id);
        words_by_id.insert(step.id, got_words);
    }
    assert!(chunks.is_empty(), "chunks for an id that sent none");
    words_by_id
}

#[test]
fn soak_pool_sizes_are_byte_identical_to_direct_calls() {
    let mut reference: Option<Vec<HashMap<u64, Vec<u64>>>> = None;
    for workers in [1usize, 2, 4, 8] {
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let options = ServeOptions {
            workers,
            fixed_micros: Some(0),
            ..ServeOptions::default()
        };
        let server = spawn(listener, options).expect("spawn");
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                let endpoint = server.endpoint().clone();
                std::thread::spawn(move || run_client(&endpoint, &client_steps(c, workers)))
            })
            .collect();
        let words: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        let summary = server.stop().expect("stop");
        assert_eq!(summary.connections, 5, "four clients + the stop client");
        assert_eq!(summary.requests, 4 * 12 + 1, "48 soak requests + shutdown");
        assert_eq!(summary.errors, 4, "one deliberate error per client");
        match &reference {
            None => reference = Some(words),
            Some(first) => assert_eq!(
                first, &words,
                "pool size {workers} changed the delivered words"
            ),
        }
    }
}
