//! Protocol fuzz suite: the frame decoder, the JSON parser, the
//! request validator and the chunk decoder are the serve stack's
//! untrusted-input surface. Whatever bytes arrive, they must return
//! clean errors — no panics, no unbounded allocation — and a live
//! server fed garbage must answer with an error envelope and close.

use hwperm_serve::{
    decode_chunk, encode_frame, parse_request, read_frame, Client, FrameError, Json, Listener,
    Message, ServeOptions, DEFAULT_CHUNK, KIND_BLOCK, KIND_JSON, MAX_FRAME,
};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn frame_decoder_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Every outcome is allowed except a panic; any successfully
        // decoded payload obeys the allocation cap.
        if let Ok(Some((kind, payload))) = read_frame(&mut Cursor::new(bytes)) {
            prop_assert!(kind == KIND_JSON || kind == KIND_BLOCK);
            prop_assert!(payload.len() < MAX_FRAME);
        }
    }

    #[test]
    fn oversized_length_prefixes_fail_before_allocating(
        declared in (MAX_FRAME as u64 + 1..=u32::MAX as u64),
        tail in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        // A hostile prefix can declare up to 4 GiB; the decoder must
        // reject on the declared value alone. If it tried to allocate
        // and read first, this test would report Truncated (the body
        // is at most 8 bytes) — Oversized proves the cap check fired.
        let mut wire = (declared as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&tail);
        prop_assert_eq!(
            read_frame(&mut Cursor::new(wire)),
            Err(FrameError::Oversized { declared })
        );
    }

    #[test]
    fn truncated_frames_never_parse_as_complete(
        payload in prop::collection::vec(any::<u8>(), 0..32),
        kind in 0u8..2,
        cut in any::<usize>(),
    ) {
        let wire = encode_frame(kind, &payload);
        let cut = cut % wire.len(); // strictly shorter than the frame
        match read_frame(&mut Cursor::new(wire[..cut].to_vec())) {
            Ok(None) => prop_assert_eq!(cut, 0, "only an empty stream is a clean close"),
            Err(_) => {}
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded as complete"),
        }
    }

    #[test]
    fn json_parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let _ = Json::parse(&bytes);
    }

    #[test]
    fn request_parser_never_panics_and_errors_carry_messages(
        bytes in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        if let Err(e) = parse_request(&bytes, DEFAULT_CHUNK) {
            prop_assert!(!e.message.is_empty());
            prop_assert!(!e.command.is_empty());
        }
    }

    #[test]
    fn chunk_decoder_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        if let Ok(chunk) = decode_chunk(&bytes) {
            prop_assert_eq!(chunk.words.len() * 8 + 40, bytes.len());
        }
    }

    #[test]
    fn random_json_fragments_round_trip_or_reject(
        n in 1u64..1000,
        deep in 0usize..80,
    ) {
        // Structured-ish inputs: nested arrays stay within the depth
        // cap or error cleanly, and numbers survive exactly.
        let doc = format!("{}{}{}", "[".repeat(deep), n, "]".repeat(deep));
        match Json::parse(doc.as_bytes()) {
            Ok(mut j) => {
                for _ in 0..deep {
                    let arr = j.as_array().expect("peeled a nested array").to_vec();
                    prop_assert_eq!(arr.len(), 1);
                    j = arr.into_iter().next().expect("one element");
                }
                prop_assert_eq!(j.as_u64(), Some(n));
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

/// The depth cap itself, pinned: 100 000 open brackets must be
/// rejected (not overflow the stack), while a document at the cap
/// parses.
#[test]
fn depth_bomb_is_rejected_cleanly() {
    let bomb = "[".repeat(100_000);
    assert!(Json::parse(bomb.as_bytes()).is_err());
}

/// A live server fed each class of hostile input answers with exactly
/// one error envelope, then closes the connection (there is no
/// resynchronization point in a length-prefixed stream).
#[test]
fn live_server_survives_hostile_frames() {
    let hostile: [(&str, Vec<u8>); 4] = [
        // Oversized declared length.
        ("oversized", 0xFFFF_FFFFu32.to_be_bytes().to_vec()),
        // Zero-length frame.
        ("empty", 0u32.to_be_bytes().to_vec()),
        // Unknown frame kind.
        ("unknown-kind", {
            let mut w = 2u32.to_be_bytes().to_vec();
            w.extend_from_slice(&[9, b'x']);
            w
        }),
        // Truncated frame: declares 100 bytes, delivers 3, then EOF.
        ("truncated", {
            let mut w = 100u32.to_be_bytes().to_vec();
            w.extend_from_slice(&[0, b'{', b'}']);
            w
        }),
    ];
    for (label, bytes) in hostile {
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let server = hwperm_serve::spawn(listener, ServeOptions::default()).expect("spawn");
        let mut client = Client::connect(server.endpoint()).expect("connect");
        client.send_raw(&bytes).expect("send");
        client.finish_writes().expect("half-close");
        let first = client.read_message().expect("one response expected");
        match first {
            Some(Message::Envelope(env)) => {
                let text = String::from_utf8(env).expect("utf-8 envelope");
                assert!(
                    text.contains("\"status\":\"error\""),
                    "{label}: not an error envelope: {text}"
                );
            }
            other => panic!("{label}: expected an error envelope, got {other:?}"),
        }
        assert_eq!(
            client.read_message().expect("clean close"),
            None,
            "{label}: server must close after a framing error"
        );
        server.stop().expect("stop");
    }

    // Unparseable JSON inside a well-formed frame: error envelope, but
    // the connection survives (framing is still synchronized).
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let server = hwperm_serve::spawn(listener, ServeOptions::default()).expect("spawn");
    let mut client = Client::connect(server.endpoint()).expect("connect");
    let bad = client.request("not json at all").expect("response");
    assert!(!bad.is_ok(), "invalid JSON must be an error envelope");
    let good = client
        .request("{\"id\":2,\"cmd\":\"unrank\",\"n\":3,\"index\":4}")
        .expect("connection must survive a JSON error");
    assert!(good.is_ok());
    server.stop().expect("stop");
}

/// The write path refuses to build an oversized outbound frame (server
/// invariant pinned at the library boundary): the largest legal chunk
/// still fits the cap.
#[test]
fn largest_legal_chunk_fits_the_frame_cap() {
    use hwperm_serve::{encode_chunk, CHUNK_CAP, CHUNK_HEADER};
    let words = vec![0u8; CHUNK_CAP * 8];
    let payload = encode_chunk(0, 0, 0, 0, &words);
    assert_eq!(payload.len(), CHUNK_HEADER + CHUNK_CAP * 8);
    assert!(payload.len() < MAX_FRAME);
    // encode_frame would panic if this overflowed the cap.
    let _ = encode_frame(KIND_BLOCK, &payload);
}
