//! Store-backed serving: a server given a warm store directory must
//! answer `verify` and `block` byte-identically to a computing server,
//! and must fail *loudly* — an error envelope, never a silent
//! recompute — when the store underneath it is corrupted.

use hwperm_serve::{spawn, Client, Listener, ServeOptions};
use hwperm_store::{build, chunk_file_name, table_dir, BuildOptions};
use std::path::PathBuf;

fn warm_store(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hwperm-serve-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    build(
        &dir,
        n,
        &BuildOptions {
            jobs: 2,
            chunk_words: 128,
            max_chunks: None,
        },
    )
    .unwrap();
    dir
}

fn options(store_dir: Option<PathBuf>) -> ServeOptions {
    ServeOptions {
        workers: 2,
        fixed_micros: Some(0),
        store_dir,
        ..ServeOptions::default()
    }
}

#[test]
fn warm_store_serving_is_wire_identical_to_computing() {
    let store = warm_store("parity", 6);
    let requests = [
        "{\"id\":1,\"cmd\":\"verify\",\"n\":6,\"jobs\":2}".to_string(),
        "{\"id\":2,\"cmd\":\"block\",\"n\":6,\"start\":100,\"end\":650,\"chunk\":96}".to_string(),
        "{\"id\":3,\"cmd\":\"block\",\"n\":6,\"start\":0,\"end\":720}".to_string(),
    ];
    let mut responses = Vec::new();
    for dir in [None, Some(store.clone())] {
        let server = spawn(Listener::bind_tcp("127.0.0.1:0").unwrap(), options(dir)).unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let batch: Vec<_> = requests
            .iter()
            .map(|req| client.request(req).unwrap())
            .collect();
        server.stop().unwrap();
        responses.push(batch);
    }
    let (computed, stored) = (&responses[0], &responses[1]);
    for (a, b) in computed.iter().zip(stored) {
        assert!(
            a.is_ok() && b.is_ok(),
            "{:?} vs {:?}",
            a.envelope,
            b.envelope
        );
        assert_eq!(a.envelope, b.envelope, "envelopes diverged");
        assert_eq!(a.words(), b.words(), "block words diverged");
    }
    // n beyond the store's range still works (pure computed fallback).
    let server = spawn(
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        options(Some(store.clone())),
    )
    .unwrap();
    let mut client = Client::connect(server.endpoint()).unwrap();
    let r = client
        .request("{\"id\":9,\"cmd\":\"block\",\"n\":11,\"start\":0,\"end\":64}")
        .unwrap();
    assert!(r.is_ok());
    assert_eq!(r.words().len(), 64);
    server.stop().unwrap();
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn corrupted_store_fails_block_requests_loudly() {
    let store = warm_store("corrupt", 6);
    // Flip one byte deep in chunk 2's body after the store went warm.
    let chunk = table_dir(&store, 6).join(chunk_file_name(2));
    let mut bytes = std::fs::read(&chunk).unwrap();
    let mid = bytes.len() - 9;
    bytes[mid] ^= 0x40;
    std::fs::write(&chunk, &bytes).unwrap();

    let server = spawn(
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        options(Some(store.clone())),
    )
    .unwrap();
    let mut client = Client::connect(server.endpoint()).unwrap();
    // A range inside untouched chunks still serves fine...
    let ok = client
        .request("{\"id\":1,\"cmd\":\"block\",\"n\":6,\"start\":0,\"end\":120}")
        .unwrap();
    assert!(ok.is_ok());
    // ...but one crossing the tampered chunk gets a loud store error.
    let bad = client
        .request("{\"id\":2,\"cmd\":\"block\",\"n\":6,\"start\":0,\"end\":720}")
        .unwrap();
    assert!(!bad.is_ok());
    let envelope = String::from_utf8(bad.envelope.clone()).unwrap();
    assert!(
        envelope.contains("store error:") && envelope.contains("chunk content hash mismatch"),
        "{envelope}"
    );
    // The verify path hits the same wall instead of recomputing.
    let verify = client
        .request("{\"id\":3,\"cmd\":\"verify\",\"n\":6,\"jobs\":1}")
        .unwrap();
    assert!(!verify.is_ok());
    let envelope = String::from_utf8(verify.envelope.clone()).unwrap();
    assert!(envelope.contains("store error:"), "{envelope}");
    server.stop().unwrap();
    std::fs::remove_dir_all(&store).unwrap();
}
