//! Shared helpers for the hostile-network integration tests.

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

/// Runs `body` under a hard watchdog: if it neither finishes nor
/// panics within `secs`, the *test* fails loudly instead of hanging
/// the suite. Every chaos/hardening test runs inside one — "never a
/// hang" is an acceptance criterion, so a hang must be a failure, not
/// a timeout in CI three layers up.
pub fn watchdog<F>(secs: u64, name: &str, body: F)
where
    F: FnOnce() + Send + 'static,
{
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let runner = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            body();
            let _ = done_tx.send(());
        })
        .expect("spawn watchdog body");
    match done_rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => runner.join().expect("test body panicked after finishing"),
        Err(RecvTimeoutError::Disconnected) => {
            // The body panicked (sender dropped without sending):
            // propagate the panic.
            runner.join().expect("test body panicked");
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("{name}: watchdog fired after {secs}s — the test hung");
        }
    }
}
