//! Golden wire transcripts: the exact bytes a `workers = 1`,
//! `fixed_micros = 0` server puts on the wire for every request type,
//! including error envelopes and the stats snapshot.
//!
//! The framing, the chunk headers and the envelopes are re-derived
//! here by hand (no calls into the crate's encoders), so any change to
//! the wire format — prefix endianness, kind bytes, envelope key
//! order, chunk header layout — fails this file. Requests run in
//! lock-step (send one, read its full response, send the next), which
//! also makes the stats counters exact.

use hwperm_core::{FaultPolicy, GuardedPermSource, RandomPermSource, SoftwareRandomSource};
use hwperm_serve::{spawn, Endpoint, Listener, ServeOptions, STREAM_SPOT_CHECK_EVERY};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A JSON frame, framed by hand: `[u32 BE length][0x00][body]`.
fn json_frame(body: &str) -> Vec<u8> {
    let mut out = ((body.len() + 1) as u32).to_be_bytes().to_vec();
    out.push(0x00);
    out.extend_from_slice(body.as_bytes());
    out
}

/// A binary chunk frame, framed by hand: `[u32 BE length][0x01]` then
/// five LE u64 header words (id, seq, base, count, flags) and the LE
/// u64 payload words.
fn chunk_frame(id: u64, seq: u64, base: u64, flags: u64, words: &[u64]) -> Vec<u8> {
    let mut payload = Vec::new();
    for v in [id, seq, base, words.len() as u64, flags] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for w in words {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    let mut out = ((payload.len() + 1) as u32).to_be_bytes().to_vec();
    out.push(0x01);
    out.extend_from_slice(&payload);
    out
}

/// An envelope frame, written out as the full pinned literal (only the
/// crate version and the computed metrics vary).
fn envelope_frame(command: &str, ok: bool, results: &str, id: u64, bytes_in: usize) -> Vec<u8> {
    let (status, exit, errors) = if ok { ("ok", 0, 0) } else { ("error", 2, 1) };
    json_frame(&format!(
        "{{\"tool\":\"hwperm\",\"version\":\"{}\",\"command\":\"{command}\",\
         \"status\":\"{status}\",\"exit\":{exit},\"errors\":{errors},\
         \"results\":[{results}],\"metrics\":{{\"id\":{id},\"micros\":0,\
         \"bytes_in\":{bytes_in}}}}}\n",
        env!("CARGO_PKG_VERSION"),
    ))
}

/// Packed words of all six 3-element permutations in lexicographic
/// order, 2 bits per element, position 0 most significant — Table I
/// dressed for the wire.
const N3_WORDS: [u64; 6] = [0b000110, 0b001001, 0b010010, 0b011000, 0b100001, 0b100100];

/// The golden exchange: every request type on one connection. Returns
/// `(sent, expected)` pairs; the stats step's expectations are derived
/// from the byte totals of the steps before it.
fn transcript() -> Vec<(Vec<u8>, Vec<u8>)> {
    // The random-stream words come from the library (the server's
    // contract is exactly "what GuardedPermSource yields for this
    // seed"); everything else is written out by hand.
    let mut source = GuardedPermSource::with_options(
        SoftwareRandomSource::new(4, 7),
        FaultPolicy::Fallback,
        STREAM_SPOT_CHECK_EVERY,
        7u64.wrapping_add(0x9E37_79B9_7F4A_7C15),
    );
    let mut stream_words = vec![0u64; 3];
    source.fill_packed_u64(&mut stream_words);

    let mut steps: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();

    let req = r#"{"id":1,"cmd":"unrank","n":4,"index":11}"#;
    steps.push((
        json_frame(req),
        envelope_frame(
            "unrank",
            true,
            r#"{"type":"unrank","n":4,"index":11,"perm":[1,3,2,0],"packed":120}"#,
            1,
            req.len() + 5,
        ),
    ));

    let req = r#"{"id":2,"cmd":"rank","perm":[1,3,2,0]}"#;
    steps.push((
        json_frame(req),
        envelope_frame(
            "rank",
            true,
            r#"{"type":"rank","n":4,"perm":[1,3,2,0],"index":11}"#,
            2,
            req.len() + 5,
        ),
    ));

    let req = r#"{"id":3,"cmd":"block","n":3,"start":0,"end":6,"chunk":4}"#;
    let mut resp = chunk_frame(3, 0, 0, 0, &N3_WORDS[..4]);
    resp.extend_from_slice(&chunk_frame(3, 1, 4, 1, &N3_WORDS[4..]));
    resp.extend_from_slice(&envelope_frame(
        "block",
        true,
        r#"{"type":"block","n":3,"start":0,"end":6,"chunk":4,"chunks":2,"words":6}"#,
        3,
        req.len() + 5,
    ));
    steps.push((json_frame(req), resp));

    let req = r#"{"id":4,"cmd":"verify","n":3,"jobs":1}"#;
    steps.push((
        json_frame(req),
        envelope_frame(
            "verify",
            true,
            r#"{"type":"verify","n":3,"workers":1,"total":6,"verdict":"ok"}"#,
            4,
            req.len() + 5,
        ),
    ));

    let req = r#"{"id":5,"cmd":"nope"}"#;
    steps.push((
        json_frame(req),
        envelope_frame(
            "error",
            false,
            "{\"error\":\"unknown cmd \\\"nope\\\" (commands: unrank | rank | block | \
             random-stream | verify | stats | shutdown)\"}",
            5,
            req.len() + 5,
        ),
    ));

    let req = r#"{"id":6,"cmd":"unrank","n":4,"index":99}"#;
    steps.push((
        json_frame(req),
        envelope_frame(
            "unrank",
            false,
            r#"{"error":"index must be below 4!"}"#,
            6,
            req.len() + 5,
        ),
    ));

    let req = r#"{"id":7,"cmd":"random-stream","n":4,"count":3,"seed":7,"chunk":8}"#;
    let mut resp = chunk_frame(7, 0, 0, 1, &stream_words);
    resp.extend_from_slice(&envelope_frame(
        "random-stream",
        true,
        "{\"type\":\"random-stream\",\"n\":4,\"count\":3,\"seed\":7,\"chunk\":8,\
         \"chunks\":1,\"words\":3,\"guard\":{\"detected\":0,\"retried\":0,\"fell_back\":0}}",
        7,
        req.len() + 5,
    ));
    steps.push((json_frame(req), resp));

    // A binary frame sent client → server is a protocol violation the
    // server answers (id 0) without closing the connection.
    let raw = chunk_frame(0, 0, 0, 0, &[]);
    let bytes_in = raw.len(); // payload + 5 == the whole frame
    steps.push((
        raw,
        envelope_frame(
            "error",
            false,
            r#"{"error":"binary frames flow server to client only"}"#,
            0,
            bytes_in,
        ),
    ));

    // Stats: every counter derivable from the steps above.
    let req = r#"{"id":9,"cmd":"stats"}"#;
    let bytes_in_total: usize =
        steps.iter().map(|(sent, _)| sent.len()).sum::<usize>() + req.len() + 5;
    let bytes_out_total: usize = steps.iter().map(|(_, resp)| resp.len()).sum();
    // `uptime_ms` is pinned to 0 the same way `micros` is: a
    // fixed-micros server reports deterministic time everywhere.
    let results = format!(
        "{{\"type\":\"stats\",\"connections\":1,\"requests\":9,\"errors\":3,\
         \"bytes_in\":{bytes_in_total},\"bytes_out\":{bytes_out_total},\"chunks\":3,\
         \"micros\":0,\"uptime_ms\":0,\"conns_rejected\":0,\"requests_timed_out\":0,\
         \"retries_observed\":0,\"commands\":{{\"unrank\":2,\"rank\":1,\"block\":1,\
         \"random-stream\":1,\"verify\":1,\"stats\":1,\"shutdown\":0,\"error\":2}}}}"
    );
    steps.push((
        json_frame(req),
        envelope_frame("stats", true, &results, 9, req.len() + 5),
    ));

    let req = r#"{"id":10,"cmd":"shutdown"}"#;
    steps.push((
        json_frame(req),
        envelope_frame(
            "shutdown",
            true,
            r#"{"type":"shutdown","stopping":true}"#,
            10,
            req.len() + 5,
        ),
    ));

    steps
}

fn golden_options() -> ServeOptions {
    ServeOptions {
        workers: 1,
        fixed_micros: Some(0),
        ..ServeOptions::default()
    }
}

/// Runs the transcript against a live server in lock-step and returns
/// every byte the server sent.
fn run_transcript(stream: &mut (impl Read + Write)) -> Vec<u8> {
    let mut received = Vec::new();
    for (i, (sent, expected)) in transcript().into_iter().enumerate() {
        stream.write_all(&sent).expect("send");
        let mut got = vec![0u8; expected.len()];
        stream.read_exact(&mut got).expect("response bytes");
        assert_eq!(
            got,
            expected,
            "step {i}: wire bytes diverge\n got: {}\nwant: {}",
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&expected),
        );
        received.extend_from_slice(&got);
    }
    // After the shutdown envelope the server closes cleanly.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean close");
    assert!(
        rest.is_empty(),
        "unexpected trailing bytes: {}",
        String::from_utf8_lossy(&rest)
    );
    received
}

#[test]
fn every_request_type_matches_its_pinned_wire_bytes() {
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let server = spawn(listener, golden_options()).expect("spawn");
    let Endpoint::Tcp(addr) = *server.endpoint() else {
        panic!("tcp endpoint expected");
    };
    let mut stream = TcpStream::connect(addr).expect("connect");
    run_transcript(&mut stream);
    let summary = server.join().expect("summary");
    assert_eq!(
        summary.connections, 1,
        "the shutdown wake-up connect is not served"
    );
    assert_eq!(summary.requests, 10);
    assert_eq!(summary.errors, 3);
}

#[test]
fn transcripts_are_byte_identical_across_runs() {
    let mut runs = Vec::new();
    for _ in 0..2 {
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let server = spawn(listener, golden_options()).expect("spawn");
        let Endpoint::Tcp(addr) = *server.endpoint() else {
            panic!("tcp endpoint expected");
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        runs.push(run_transcript(&mut stream));
        server.join().expect("summary");
    }
    assert_eq!(runs[0], runs[1]);
}

/// The transcript is transport-independent: a Unix-socket server
/// produces the same bytes as the TCP one.
#[cfg(unix)]
#[test]
fn unix_socket_transcript_matches_tcp() {
    let path =
        std::env::temp_dir().join(format!("hwperm-serve-golden-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = Listener::bind_unix(&path).expect("bind unix");
    let server = spawn(listener, golden_options()).expect("spawn");
    let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    run_transcript(&mut stream);
    server.join().expect("summary");
    assert!(!path.exists(), "socket file unlinked at shutdown");
}
