//! Server-side hostile-network hardening: the accept gate, idle
//! reaping, slow-loris defense, request deadlines, graceful drain, and
//! Unix-socket hygiene. Every failure mode must be a *pinned loud
//! error*, never a hang — so every test runs under a hard watchdog.

mod common;

use common::watchdog;
use hwperm_factoradic::BlockDecoder;
use hwperm_serve::{
    envelope, error_result, spawn, Client, Endpoint, Listener, Message, ServeOptions, DEADLINE_MSG,
    KIND_JSON,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn tcp_server(options: ServeOptions) -> hwperm_serve::ServerHandle {
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    spawn(listener, options).expect("spawn")
}

fn raw_connect(endpoint: &Endpoint) -> TcpStream {
    let Endpoint::Tcp(addr) = endpoint else {
        panic!("tcp test endpoints only");
    };
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

#[test]
fn accept_gate_sheds_with_pinned_busy_envelope() {
    watchdog(30, "accept-gate", || {
        let server = tcp_server(ServeOptions {
            max_conns: 1,
            fixed_micros: Some(0),
            ..ServeOptions::default()
        });
        // Occupy the single slot — and prove it is *admitted* (a
        // served request), not just queued, before testing the gate.
        let mut admitted = Client::connect(server.endpoint()).expect("connect 1");
        assert!(admitted
            .request(r#"{"id":1,"cmd":"unrank","n":4,"index":0}"#)
            .expect("request")
            .is_ok());

        // The second connection is shed: one pinned busy envelope,
        // then EOF. No request needs to be sent — shedding happens at
        // accept time.
        let mut shed = Client::connect(server.endpoint()).expect("connect 2");
        let Some(Message::Envelope(env)) = shed.read_message().expect("read busy") else {
            panic!("expected the busy envelope");
        };
        let expected = envelope(
            "busy",
            false,
            &error_result("server busy: connection limit of 1 reached, retry later"),
            0,
            0,
            0,
        );
        assert_eq!(
            env,
            expected,
            "busy envelope diverged\n got: {}\nwant: {}",
            String::from_utf8_lossy(&env),
            String::from_utf8_lossy(&expected),
        );
        assert!(
            shed.read_message().expect("EOF after busy").is_none(),
            "shed connection must be closed after the busy envelope"
        );

        // Free the slot; the gate reopens (poll briefly — the server
        // notices the close asynchronously).
        drop(admitted);
        let mut reopened = None;
        for _ in 0..200 {
            let mut candidate = Client::connect(server.endpoint()).expect("reconnect");
            match candidate.read_message_timeout_probe() {
                Ok(()) => {
                    reopened = Some(candidate);
                    break;
                }
                Err(()) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        let mut client = reopened.expect("gate must reopen after the slot frees");
        assert!(client
            .request(r#"{"id":2,"cmd":"rank","perm":[1,0]}"#)
            .expect("request after reopen")
            .is_ok());
        drop(client);

        let summary = server.stop().expect("stop");
        assert!(
            summary.conns_rejected >= 1,
            "the gate must have shed at least the probed connection: {summary}"
        );
        assert_eq!(
            summary.threads_spawned, summary.threads_joined,
            "server leaked threads: {summary}"
        );
    });
}

/// A tiny admission probe used by the gate test: sends a cheap request
/// and reports whether the connection was admitted (envelope for *our*
/// id) or shed (busy envelope / EOF).
trait AdmissionProbe {
    fn read_message_timeout_probe(&mut self) -> Result<(), ()>;
}

impl AdmissionProbe for Client {
    fn read_message_timeout_probe(&mut self) -> Result<(), ()> {
        self.send_json(r#"{"id":99,"cmd":"stats"}"#)
            .map_err(|_| ())?;
        match self.read_message() {
            Ok(Some(Message::Envelope(env))) => {
                let text = String::from_utf8_lossy(&env);
                if text.contains("\"command\":\"busy\"") {
                    Err(())
                } else {
                    Ok(())
                }
            }
            _ => Err(()),
        }
    }
}

#[test]
fn idle_timeout_reaps_silent_connection_with_pinned_envelope() {
    watchdog(30, "idle-reap", || {
        let server = tcp_server(ServeOptions {
            idle_timeout_ms: Some(60),
            fixed_micros: Some(0),
            ..ServeOptions::default()
        });
        // Connect and say nothing. The read deadline fires and the
        // server answers the pinned idle-timeout envelope, then closes.
        let mut silent = Client::connect(server.endpoint()).expect("connect");
        let Some(Message::Envelope(env)) = silent.read_message().expect("read timeout env") else {
            panic!("expected the idle-timeout envelope");
        };
        let expected = envelope(
            "error",
            false,
            &error_result("idle timeout: no complete frame arrived before the deadline"),
            0,
            0,
            0,
        );
        assert_eq!(
            env,
            expected,
            "idle-timeout envelope diverged: {}",
            String::from_utf8_lossy(&env)
        );
        assert!(silent.read_message().expect("EOF").is_none());
        let summary = server.stop().expect("stop");
        assert_eq!(summary.threads_spawned, summary.threads_joined);
    });
}

#[test]
fn slow_loris_trickle_is_reaped_not_serviced_forever() {
    watchdog(30, "slow-loris", || {
        let server = tcp_server(ServeOptions {
            idle_timeout_ms: Some(60),
            fixed_micros: Some(0),
            ..ServeOptions::default()
        });
        // Drip a frame that never completes: declare 1000 bytes, then
        // one byte every 10 ms. Each byte lands within the socket read
        // deadline, so only the idle sweep (keyed on *completed*
        // frames) can catch this.
        let mut loris = raw_connect(server.endpoint());
        loris
            .write_all(&1000u32.to_be_bytes())
            .expect("length prefix");
        loris.write_all(&[KIND_JSON]).expect("kind byte");
        let mut reply = Vec::new();
        loop {
            if loris
                .write_all(b" ")
                .and_then(|()| loris.flush())
                .is_err()
            {
                break; // reaped: the server closed on us
            }
            std::thread::sleep(Duration::from_millis(10));
            // Poll the read side without blocking the drip.
            loris
                .set_read_timeout(Some(Duration::from_millis(1)))
                .expect("poll timeout");
            let mut buf = [0u8; 4096];
            match std::io::Read::read(&mut loris, &mut buf) {
                Ok(0) => break, // clean close after the error envelope
                Ok(n) => reply.extend_from_slice(&buf[..n]),
                Err(_) => {} // nothing yet
            }
        }
        // Drain whatever is left of the reply.
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("drain timeout");
        let mut buf = [0u8; 4096];
        while let Ok(n) = std::io::Read::read(&mut loris, &mut buf) {
            if n == 0 {
                break;
            }
            reply.extend_from_slice(&buf[..n]);
        }
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.contains("truncated frame: stream ended"),
            "the reaped trickler must get the loud truncation envelope, got: {text:?}"
        );
        assert!(text.contains("\"status\":\"error\""));
        let summary = server.stop().expect("stop");
        assert_eq!(summary.threads_spawned, summary.threads_joined);
    });
}

#[test]
fn request_deadline_cancels_long_block_with_pinned_error() {
    watchdog(60, "request-deadline", || {
        let server = tcp_server(ServeOptions {
            workers: 2,
            request_deadline_ms: Some(1),
            fixed_micros: Some(0),
            ..ServeOptions::default()
        });
        let mut client = Client::connect(server.endpoint()).expect("connect");
        // A block big enough that its shards *must* hit a between-chunk
        // checkpoint after the 1 ms deadline.
        let req = r#"{"id":7,"cmd":"block","n":12,"start":0,"end":1000000,"chunk":4096}"#;
        let response = client.request(req).expect("request");
        let expected = envelope(
            "block",
            false,
            &error_result(DEADLINE_MSG),
            7,
            0,
            (req.len() + 5) as u64,
        );
        assert_eq!(
            response.envelope,
            expected,
            "deadline envelope diverged: {}",
            String::from_utf8_lossy(&response.envelope)
        );
        drop(client);
        let summary = server.stop().expect("stop");
        assert!(
            summary.requests_timed_out >= 1,
            "the winning shard must count the timeout exactly once: {summary}"
        );
        assert_eq!(summary.threads_spawned, summary.threads_joined);
    });
}

#[test]
fn graceful_drain_flushes_inflight_block_responses() {
    watchdog(60, "graceful-drain", || {
        let server = tcp_server(ServeOptions {
            workers: 2,
            fixed_micros: Some(0),
            ..ServeOptions::default()
        });
        let endpoint = server.endpoint().clone();
        // Pipeline a sizeable block, then immediately shut the server
        // down from another connection. The in-flight response must
        // still arrive complete — drain flushes, never drops.
        let reader = std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("connect");
            client
                .request(r#"{"id":1,"cmd":"block","n":8,"start":0,"end":40320,"chunk":512}"#)
                .expect("in-flight response must be flushed during drain")
        });
        // Give the request a moment to be in flight, then drain.
        std::thread::sleep(Duration::from_millis(5));
        let summary = server.stop().expect("stop");
        let response = reader.join().expect("reader thread");
        assert!(response.is_ok(), "drained response must be the real one");
        // Chunks may interleave across shards; compare as words in
        // base order.
        let mut by_base = response.chunks.clone();
        by_base.sort_by_key(|c| c.base);
        let words: Vec<u64> = by_base
            .iter()
            .flat_map(|c| c.words.iter().copied())
            .collect();
        let mut bytes = Vec::new();
        BlockDecoder::new(8).decode_le_bytes_into(0..40320, &mut bytes);
        let expected: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("word")))
            .collect();
        assert_eq!(words, expected, "drained block words diverge");
        assert_eq!(summary.threads_spawned, summary.threads_joined);
    });
}

#[cfg(unix)]
mod unix_sockets {
    use super::*;
    use std::path::PathBuf;

    fn socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hwperm-hardening-{tag}-{}.sock",
            std::process::id()
        ))
    }

    #[test]
    fn socket_file_removed_on_graceful_shutdown() {
        watchdog(30, "unix-cleanup", || {
            let path = socket_path("cleanup");
            let _ = std::fs::remove_file(&path);
            let listener = Listener::bind_unix(&path).expect("bind");
            let server = spawn(listener, ServeOptions::default()).expect("spawn");
            assert!(path.exists(), "socket file exists while serving");
            server.stop().expect("stop");
            assert!(
                !path.exists(),
                "graceful shutdown must unlink the socket file"
            );
        });
    }

    #[test]
    fn binding_over_live_server_fails_loudly() {
        watchdog(30, "unix-live-bind", || {
            let path = socket_path("live");
            let _ = std::fs::remove_file(&path);
            let listener = Listener::bind_unix(&path).expect("bind");
            let server = spawn(listener, ServeOptions::default()).expect("spawn");
            let err = match Listener::bind_unix(&path) {
                Ok(_) => panic!("second bind over a live server must fail"),
                Err(e) => e,
            };
            assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
            assert!(
                err.to_string().contains("refusing to bind")
                    && err.to_string().contains("live server"),
                "the error must say *why*: {err}"
            );
            // The probe connection counts as one served connection but
            // must not have disturbed the server.
            let mut client = Client::connect(server.endpoint()).expect("connect");
            assert!(client
                .request(r#"{"id":1,"cmd":"unrank","n":3,"index":5}"#)
                .expect("request")
                .is_ok());
            drop(client);
            server.stop().expect("stop");
            assert!(!path.exists());
        });
    }

    #[test]
    fn binding_over_stale_socket_succeeds() {
        watchdog(30, "unix-stale-bind", || {
            let path = socket_path("stale");
            let _ = std::fs::remove_file(&path);
            // Fake a crash: bind raw, then drop the listener without
            // unlinking — the file stays behind, answering nobody.
            let stale = std::os::unix::net::UnixListener::bind(&path).expect("raw bind");
            drop(stale);
            assert!(path.exists(), "stale socket file left behind");
            let listener = Listener::bind_unix(&path).expect("bind over stale must succeed");
            let server = spawn(listener, ServeOptions::default()).expect("spawn");
            let mut client = Client::connect(server.endpoint()).expect("connect");
            assert!(client
                .request(r#"{"id":1,"cmd":"rank","perm":[2,0,1]}"#)
                .expect("request")
                .is_ok());
            drop(client);
            server.stop().expect("stop");
            assert!(!path.exists());
        });
    }
}
