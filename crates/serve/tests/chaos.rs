//! The chaos soak: four retrying clients drive the full request mix
//! through a fault-injecting proxy, under every seeded fault schedule,
//! and the delivered bytes must converge to exactly what the libraries
//! produce in-process — or a pinned loud error, never a hang (every
//! test runs under a hard watchdog) and never a leaked thread (both
//! the proxy and the server prove `threads_spawned == threads_joined`).
//!
//! Convergence is guaranteed by construction, not luck: schedules are
//! finite (after the last faulted connection everything is clean
//! forever) and the retry budget exceeds the fault count, so whichever
//! client draws whichever fault, its replay eventually lands on a
//! clean connection.

mod common;

use common::watchdog;
use hwperm_core::{FaultPolicy, GuardedPermSource, RandomPermSource, SoftwareRandomSource};
use hwperm_factoradic::{rank_u64, BlockDecoder, Unranker};
use hwperm_serve::{
    envelope, error_result, spawn, BlockChunk, ChaosProxy, Client, ClientError, Endpoint, Fault,
    Listener, RetryClient, RetryPolicy, ServeOptions, CHUNK_FLAG_LAST, STREAM_SPOT_CHECK_EVERY,
};
use hwperm_verify::shard_ranges;

const WORKERS: usize = 2;

/// Retry budget comfortably above every schedule's fault count.
fn soak_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        backoff_ms: 5,
        max_backoff_ms: 50,
        seed,
    }
}

/// One request and everything the server must eventually deliver.
struct Step {
    req: String,
    command: &'static str,
    ok: bool,
    id: u64,
    results: String,
    words: Option<Vec<u64>>,
    /// Whether [`RetryClient`] replays this command on transport
    /// faults; non-replayable steps are re-issued by the *harness*
    /// (a fresh request is the application's decision, never the
    /// client's).
    replayable: bool,
}

impl Step {
    /// The envelopes this step may legitimately produce: attempt 0 is
    /// the bare request; replayed attempts carry the `"attempt"` stamp
    /// and therefore a different `metrics.bytes_in`. All candidates
    /// are exact byte strings — nothing is fuzzy-matched.
    fn envelope_candidates(&self, max_attempts: u32) -> Vec<Vec<u8>> {
        (0..max_attempts)
            .map(|k| {
                let body = if k == 0 {
                    self.req.clone()
                } else {
                    format!("{},\"attempt\":{k}}}", &self.req[..self.req.len() - 1])
                };
                envelope(
                    self.command,
                    self.ok,
                    &self.results,
                    self.id,
                    0,
                    (body.len() + 5) as u64,
                )
            })
            .collect()
    }
}

fn render_perm(perm: &[u32]) -> String {
    let body = perm
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!("[{body}]")
}

fn expected_block_chunks(count: u64, chunk: u64) -> u64 {
    let shard_count = (WORKERS as u64).min(count.div_ceil(chunk)).max(1) as usize;
    shard_ranges(count as usize, shard_count)
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(|r| ((r.end - r.start) as u64).div_ceil(chunk))
        .sum()
}

fn direct_block_words(n: usize, start: u64, end: u64) -> Vec<u64> {
    let mut bytes = Vec::new();
    BlockDecoder::new(n).decode_le_bytes_into(start..end, &mut bytes);
    bytes
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte word")))
        .collect()
}

fn unrank_step(id: u64, n: usize, index: u64) -> Step {
    let perm = Unranker::new(n).unrank(index);
    Step {
        req: format!("{{\"id\":{id},\"cmd\":\"unrank\",\"n\":{n},\"index\":{index}}}"),
        command: "unrank",
        ok: true,
        id,
        results: format!(
            "{{\"type\":\"unrank\",\"n\":{n},\"index\":{index},\"perm\":{},\"packed\":{}}}",
            render_perm(perm.as_slice()),
            perm.pack_u64(),
        ),
        words: None,
        replayable: true,
    }
}

fn rank_step(id: u64, n: usize, index: u64) -> Step {
    let perm = Unranker::new(n).unrank(index);
    Step {
        req: format!(
            "{{\"id\":{id},\"cmd\":\"rank\",\"perm\":{}}}",
            render_perm(perm.as_slice()),
        ),
        command: "rank",
        ok: true,
        id,
        results: format!(
            "{{\"type\":\"rank\",\"n\":{n},\"perm\":{},\"index\":{}}}",
            render_perm(perm.as_slice()),
            rank_u64(&perm),
        ),
        words: None,
        replayable: true,
    }
}

fn block_step(id: u64, n: usize, start: u64, end: u64, chunk: u64) -> Step {
    Step {
        req: format!(
            "{{\"id\":{id},\"cmd\":\"block\",\"n\":{n},\"start\":{start},\"end\":{end},\
             \"chunk\":{chunk}}}"
        ),
        command: "block",
        ok: true,
        id,
        results: format!(
            "{{\"type\":\"block\",\"n\":{n},\"start\":{start},\"end\":{end},\"chunk\":{chunk},\
             \"chunks\":{},\"words\":{}}}",
            expected_block_chunks(end - start, chunk),
            end - start,
        ),
        words: Some(direct_block_words(n, start, end)),
        replayable: true,
    }
}

fn stream_step(id: u64, n: usize, count: u64, seed: u64, chunk: u64) -> Step {
    let mut source = GuardedPermSource::with_options(
        SoftwareRandomSource::new(n, seed),
        FaultPolicy::Fallback,
        STREAM_SPOT_CHECK_EVERY,
        seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
    );
    let mut words = vec![0u64; count as usize];
    source.fill_packed_u64(&mut words);
    let guard = source.stats();
    Step {
        req: format!(
            "{{\"id\":{id},\"cmd\":\"random-stream\",\"n\":{n},\"count\":{count},\
             \"seed\":{seed},\"chunk\":{chunk}}}"
        ),
        command: "random-stream",
        ok: true,
        id,
        results: format!(
            "{{\"type\":\"random-stream\",\"n\":{n},\"count\":{count},\"seed\":{seed},\
             \"chunk\":{chunk},\"chunks\":{},\"words\":{count},\
             \"guard\":{{\"detected\":{},\"retried\":{},\"fell_back\":{}}}}}",
            count.div_ceil(chunk),
            guard.detected,
            guard.retried,
            guard.fell_back,
        ),
        words: Some(words),
        replayable: false,
    }
}

fn bad_cmd_step(id: u64) -> Step {
    Step {
        req: format!("{{\"id\":{id},\"cmd\":\"frobnicate\"}}"),
        command: "error",
        ok: false,
        id,
        results: error_result(
            "unknown cmd \"frobnicate\" (commands: unrank | rank | block | random-stream | \
             verify | stats | shutdown)",
        ),
        words: None,
        replayable: false,
    }
}

/// Each client's mix: every verifiable request type, a deliberate
/// protocol error, parameters varied per client so concurrent work
/// never aliases. (`verify`/`stats` are exercised elsewhere; their
/// results are cache/time dependent and would not pin.)
fn client_steps(c: u64) -> Vec<Step> {
    vec![
        unrank_step(1, 5, (17 * c + 3) % 120),
        rank_step(2, 5, (31 * c + 7) % 120),
        block_step(3, 4, c, 24, 5),
        stream_step(4, 5, 10 + c, 1000 + c, 4),
        bad_cmd_step(5),
        block_step(6, 5, 0, 120, 16),
        unrank_step(7, 6, (101 * c) % 720),
        rank_step(8, 3, c % 6),
    ]
}

/// Runs one client's steps through a retrying client. Replayable steps
/// ride the client's own retry loop; non-replayable ones that hit a
/// fault are *re-issued* by the harness — bounded, because the
/// schedule is finite.
fn run_soak_client(endpoint: &Endpoint, c: u64, policy: RetryPolicy) -> u64 {
    let mut client = RetryClient::new(endpoint.clone(), policy);
    for step in client_steps(c) {
        assert_eq!(
            hwperm_serve::request_is_replayable(&step.req),
            step.replayable,
            "replay matrix drifted for {}",
            step.req
        );
        let mut reissues = 0u32;
        let response = loop {
            match client.request(&step.req) {
                Ok(response) => break response,
                Err(e) if !step.replayable => {
                    // The pinned loud error, surfaced immediately —
                    // never a silent replay. The harness decides to
                    // re-issue, as a real application would.
                    assert!(
                        matches!(
                            e,
                            ClientError::Io(_) | ClientError::Frame(_) | ClientError::Protocol(_)
                        ),
                        "non-replayable fault must be a typed transport error: {e}"
                    );
                    reissues += 1;
                    assert!(
                        reissues <= 16,
                        "client {c}: schedule should have drained long ago"
                    );
                }
                Err(e) => panic!(
                    "client {c}: replayable {} exhausted its retry budget: {e}",
                    step.command
                ),
            }
        };
        let candidates = step.envelope_candidates(policy.max_attempts);
        assert!(
            candidates.contains(&response.envelope),
            "client {c} id {}: envelope not byte-identical to any legitimate attempt\n got: {}\
             \nwant attempt 0: {}",
            step.id,
            String::from_utf8_lossy(&response.envelope),
            String::from_utf8_lossy(&candidates[0]),
        );
        if let Some(expected_words) = &step.words {
            let mut chunks: Vec<BlockChunk> = response.chunks.clone();
            chunks.sort_by_key(|chunk| chunk.base);
            assert_eq!(
                chunks
                    .iter()
                    .filter(|chunk| chunk.flags & CHUNK_FLAG_LAST != 0)
                    .count(),
                1,
                "exactly one LAST chunk"
            );
            let got: Vec<u64> = chunks
                .iter()
                .flat_map(|chunk| chunk.words.iter().copied())
                .collect();
            assert_eq!(
                &got, expected_words,
                "client {c} id {}: words diverge from direct library call",
                step.id
            );
        } else {
            assert!(response.chunks.is_empty(), "unexpected chunks");
        }
    }
    let stats = client.stats();
    stats.retries
}

/// Every named fault schedule the soak must converge under.
fn schedules() -> Vec<(&'static str, Vec<Fault>)> {
    vec![
        ("clean", vec![]),
        (
            "reset",
            vec![Fault::Reset { after: 9 }, Fault::Reset { after: 100 }],
        ),
        ("delay", vec![Fault::Delay { ms: 40 }]),
        (
            "truncate",
            vec![Fault::Truncate { after: 3 }, Fault::Truncate { after: 0 }],
        ),
        (
            // Framing bytes only: offset 0 is the length prefix MSB
            // (0x80 forces an Oversized reject before any allocation),
            // offset 4 is the kind byte (an UnknownKind reject). The
            // payload carries no checksum, so flipping payload bytes
            // would be silent — the module doc explains the rule.
            "corrupt",
            vec![
                Fault::Corrupt { at: 0, mask: 0x80 },
                Fault::Corrupt { at: 4, mask: 0x07 },
            ],
        ),
        ("trickle", vec![Fault::Trickle { delay_us: 100 }]),
        (
            "mixed",
            vec![
                Fault::Reset { after: 5 },
                Fault::Corrupt { at: 0, mask: 0xFF },
                Fault::Truncate { after: 12 },
                Fault::Delay { ms: 20 },
            ],
        ),
    ]
}

#[test]
fn chaos_soak_converges_byte_identical_under_every_schedule() {
    watchdog(300, "chaos-soak", || {
        for (name, schedule) in schedules() {
            let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
            let server = spawn(
                listener,
                ServeOptions {
                    workers: WORKERS,
                    fixed_micros: Some(0),
                    ..ServeOptions::default()
                },
            )
            .expect("spawn server");
            let proxy =
                ChaosProxy::spawn(server.endpoint().clone(), &schedule).expect("spawn proxy");
            let handles: Vec<_> = (0..4u64)
                .map(|c| {
                    let endpoint = proxy.endpoint().clone();
                    std::thread::spawn(move || {
                        run_soak_client(&endpoint, c, soak_policy(0xDEAD_0000 + c))
                    })
                })
                .collect();
            let retries: u64 = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| panic!("{name}: client panicked"))
                })
                .sum();
            let report = proxy.stop();
            assert_eq!(
                report.threads_spawned, report.threads_joined,
                "{name}: proxy leaked threads: {report:?}"
            );
            let summary = server.stop().expect("stop server");
            assert_eq!(
                summary.threads_spawned, summary.threads_joined,
                "{name}: server leaked threads: {summary}"
            );
            if schedule.is_empty() {
                assert_eq!(retries, 0, "clean network must need no retries");
                assert_eq!(report.faults_injected, 0);
            } else {
                assert_eq!(report.faults_injected as usize, schedule.len());
            }
        }
    });
}

#[test]
fn server_death_mid_block_stream_is_pinned_error_then_retry_succeeds() {
    watchdog(120, "mid-stream-death", || {
        // Phase 1: the connection dies in the middle of the block
        // stream (Reset lands inside the second chunk frame). A
        // plain no-retry client must surface a typed loud error —
        // never hang, never fabricate a partial success.
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let server_a = spawn(
            listener,
            ServeOptions {
                workers: WORKERS,
                fixed_micros: Some(0),
                ..ServeOptions::default()
            },
        )
        .expect("spawn A");
        let proxy = ChaosProxy::spawn(server_a.endpoint().clone(), &[Fault::Reset { after: 600 }])
            .expect("proxy");
        let req = r#"{"id":1,"cmd":"block","n":5,"start":0,"end":120,"chunk":8}"#;
        let mut bare = Client::connect(proxy.endpoint()).expect("connect");
        let err = bare.request(req).expect_err("mid-stream death must error");
        assert!(
            matches!(
                err,
                ClientError::Frame(_) | ClientError::Io(_) | ClientError::Protocol(_)
            ),
            "pinned transport error expected, got: {err}"
        );
        drop(bare);

        // Phase 2: the server is "restarted" — the original instance
        // goes away entirely, a fresh one comes up, and the proxy
        // (standing in for the stable address) points at it. The
        // retrying client recovers without the caller doing anything.
        server_a.stop().expect("stop A");
        let listener_b = Listener::bind_tcp("127.0.0.1:0").expect("bind B");
        let server_b = spawn(
            listener_b,
            ServeOptions {
                workers: WORKERS,
                fixed_micros: Some(0),
                ..ServeOptions::default()
            },
        )
        .expect("spawn B");
        proxy.set_upstream(server_b.endpoint().clone());
        let mut retrying = RetryClient::new(proxy.endpoint().clone(), soak_policy(7));
        let response = retrying
            .request(req)
            .expect("retry against the restarted server must succeed");
        let mut chunks = response.chunks.clone();
        chunks.sort_by_key(|chunk| chunk.base);
        let words: Vec<u64> = chunks
            .iter()
            .flat_map(|chunk| chunk.words.iter().copied())
            .collect();
        assert_eq!(
            words,
            direct_block_words(5, 0, 120),
            "recovered block words must match the direct library call"
        );

        let report = proxy.stop();
        assert_eq!(report.threads_spawned, report.threads_joined);
        let summary = server_b.stop().expect("stop B");
        assert_eq!(summary.threads_spawned, summary.threads_joined);
    });
}

#[test]
fn client_that_stops_reading_cannot_pin_the_server() {
    watchdog(60, "slow-reader", || {
        // A client requests a response far bigger than the socket
        // buffers, then never reads a byte. The writer must hit its
        // write deadline, shed the connection, and the server must
        // still stop promptly with every thread joined — a reader
        // that went away cannot pin the drain.
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let server = spawn(
            listener,
            ServeOptions {
                workers: WORKERS,
                idle_timeout_ms: Some(50),
                fixed_micros: Some(0),
                ..ServeOptions::default()
            },
        )
        .expect("spawn");
        // 40 320 words = ~322 KiB of chunks, well past kernel buffers.
        let mut mute = Client::connect(server.endpoint()).expect("connect");
        mute.send_json(r#"{"id":1,"cmd":"block","n":8,"start":0,"end":40320,"chunk":512}"#)
            .expect("send");
        // Never read. Give the writer time to fill the buffers and
        // trip its deadline, then demand a prompt, leak-free stop.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let summary = server.stop().expect("stop despite the mute reader");
        assert_eq!(
            summary.threads_spawned, summary.threads_joined,
            "mute reader pinned a thread: {summary}"
        );
        drop(mute);
    });
}
