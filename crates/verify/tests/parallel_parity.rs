//! Determinism parity of the sharded sweep against the sequential
//! oracles, over the mutation suite.
//!
//! The deterministic-reporting guarantee in `hwperm_verify::parallel`
//! says [`exhaustive_check_parallel`] returns *byte-identical* results
//! to [`exhaustive_check_batched`] (and the scalar reference sweep) for
//! every worker count. A clean netlist only exercises the `Ok` side of
//! that claim, so this suite drives the interesting side with the same
//! fault-injection population the circuits crate uses: every
//! fanin-preserving single-gate mutation of the Fig. 1 converter, each
//! checked for identical verdict AND identical first-mismatch witness
//! (index, port, got, want) at 1, 2, 3 and 8 workers — plus the same
//! parity for the one-hot bank sweep and a property test over randomly
//! corrupted expectation tables.

use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{Gate, Netlist};
use hwperm_verify::{
    exhaustive_check_batched, exhaustive_check_parallel, exhaustive_check_scalar,
    expected_permutation_words, find_one_hot_violation_batched, find_one_hot_violation_parallel,
};
use proptest::prelude::*;

/// Worker counts the parity claims are pinned at: sequential-degenerate
/// (1), even splits (2, 8) and an odd count (3) whose remainder lands on
/// the leading shards.
const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A gate with the same fanin but a different function, if one exists —
/// the same mutation operator as the circuits crate's fault-injection
/// suite. Fanin preservation keeps every mutant structurally valid
/// (defined-before-use), so the levelizing tape compiler accepts all of
/// them.
fn mutate(gate: Gate) -> Option<Gate> {
    match gate {
        Gate::And(a, b) => Some(Gate::Or(a, b)),
        Gate::Or(a, b) => Some(Gate::And(a, b)),
        Gate::Xor(a, b) => Some(Gate::Or(a, b)),
        Gate::Not(a) => Some(Gate::And(a, a)), // identity instead of inversion
        Gate::Mux { sel, a, b } => Some(Gate::Mux { sel, a: b, b: a }),
        Gate::Const(v) => Some(Gate::Const(!v)),
        Gate::Input | Gate::Dff { .. } => None,
    }
}

/// Every single-gate mutant of a netlist, tagged with the mutated gate
/// index. Dead gates are included: a mutation there must yield `Ok`
/// from every oracle, which is parity worth checking too.
fn mutants(netlist: &Netlist) -> Vec<(usize, Netlist)> {
    (0..netlist.len())
        .filter_map(|i| {
            let mutated = mutate(netlist.gates()[i])?;
            (mutated != netlist.gates()[i]).then(|| (i, netlist.with_gate_replaced(i, mutated)))
        })
        .collect()
}

#[test]
fn parallel_first_mismatch_matches_sequential_on_every_mutant() {
    let netlist = converter_netlist(4, ConverterOptions::default());
    let expected = expected_permutation_words(4);

    // Ok-side parity first: the pristine converter passes every oracle.
    for workers in WORKER_COUNTS {
        assert_eq!(
            exhaustive_check_parallel(&netlist, "index", "perm", &expected, workers),
            Ok(()),
            "pristine netlist, {workers} workers"
        );
    }

    let population = mutants(&netlist);
    assert!(
        population.len() > 40,
        "mutant population too small: {}",
        population.len()
    );
    let mut killed = 0usize;
    for (gate, mutant) in &population {
        let scalar = exhaustive_check_scalar(mutant, "index", "perm", &expected);
        let batched = exhaustive_check_batched(mutant, "index", "perm", &expected);
        assert_eq!(
            scalar, batched,
            "gate {gate}: scalar and batched oracles diverge"
        );
        if batched.is_err() {
            killed += 1;
        }
        for workers in WORKER_COUNTS {
            let parallel = exhaustive_check_parallel(mutant, "index", "perm", &expected, workers);
            assert_eq!(
                parallel, batched,
                "gate {gate}, {workers} workers: sharded sweep diverges from sequential"
            );
        }
    }
    // The Err side must actually occur (the pristine check above covers
    // Ok), or the witness-parity sweep would be vacuous. The n = 4
    // converter has no dead gates, so in fact every mutant is killed;
    // asserting only the floor keeps the test robust to generator
    // changes that introduce dead logic.
    assert!(
        killed > 0,
        "no mutant was killed; the parity check is vacuous"
    );
}

#[test]
fn one_hot_parallel_matches_sequential_on_every_mutant() {
    // The converter's one-hot MUX select banks are recorded in the
    // netlist; mutations inside the decoder cones break exactly-one for
    // some swept input, and the parallel scan must report the identical
    // lowest witness (or identical None) at every worker count.
    let netlist = converter_netlist(4, ConverterOptions::default());
    assert!(
        !netlist.one_hot_banks().is_empty(),
        "converter should record its one-hot select banks"
    );
    let mut violating = 0usize;
    for (gate, mutant) in &mutants(&netlist) {
        let sequential = find_one_hot_violation_batched(mutant, "index");
        if sequential.is_some() {
            violating += 1;
        }
        for workers in WORKER_COUNTS {
            assert_eq!(
                find_one_hot_violation_parallel(mutant, "index", workers),
                sequential,
                "gate {gate}, {workers} workers: one-hot witness diverges"
            );
        }
    }
    assert!(
        violating > 0,
        "no mutant violated a one-hot bank; the parity check is vacuous"
    );
}

proptest! {
    // Each case runs a scalar, a batched and a sharded exhaustive sweep
    // over all 120 indices of the n = 5 converter, so modest case
    // counts cover thousands of cross-checked vectors.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomly corrupted expectation tables: whatever the lowest
    /// corrupted-and-detected index turns out to be (including none,
    /// when xor pairs cancel), all three sweeps must report the exact
    /// same result at an arbitrary worker count.
    #[test]
    fn corrupted_tables_report_identically(
        corruptions in prop::collection::vec((0usize..120, 1u64..16), 0..6),
        workers in 1usize..10,
    ) {
        let netlist = converter_netlist(5, ConverterOptions::default());
        let mut expected = expected_permutation_words(5);
        for &(index, mask) in &corruptions {
            expected[index] ^= mask;
        }
        let batched = exhaustive_check_batched(&netlist, "index", "perm", &expected);
        let scalar = exhaustive_check_scalar(&netlist, "index", "perm", &expected);
        prop_assert_eq!(&scalar, &batched);
        for workers in [1, workers] {
            let parallel =
                exhaustive_check_parallel(&netlist, "index", "perm", &expected, workers);
            prop_assert_eq!(&parallel, &batched);
        }
    }
}
