//! Property tests for the equivalence checker: structurally different
//! implementations of the same function must be proven equal; corrupted
//! ones must be refuted.

use hwperm_bignum::Ubig;
use hwperm_logic::{Builder, NetId, Netlist};
use hwperm_verify::CompiledNetlist;
use proptest::prelude::*;

/// Selector built with the paper's one-hot mux: decode then mask/or.
fn one_hot_selector(choices: &[u64], w: usize) -> Netlist {
    let mut b = Builder::new();
    let sel_w = (usize::BITS - (choices.len() - 1).leading_zeros()).max(1) as usize;
    let sel = b.input_bus("sel", sel_w);
    let onehot = b.decoder(&sel, choices.len());
    let buses: Vec<Vec<NetId>> = choices
        .iter()
        .map(|&c| b.constant_bus(w, &Ubig::from(c)))
        .collect();
    let refs: Vec<&[NetId]> = buses.iter().map(|x| x.as_slice()).collect();
    let out = b.one_hot_mux(&onehot, &refs);
    b.output_bus("out", &out);
    b.finish()
}

/// The same selector as a binary mux tree.
fn binary_selector(choices: &[u64], w: usize) -> Netlist {
    let mut b = Builder::new();
    let sel_w = (usize::BITS - (choices.len() - 1).leading_zeros()).max(1) as usize;
    let sel = b.input_bus("sel", sel_w);
    let buses: Vec<Vec<NetId>> = choices
        .iter()
        .map(|&c| b.constant_bus(w, &Ubig::from(c)))
        .collect();
    let refs: Vec<&[NetId]> = buses.iter().map(|x| x.as_slice()).collect();
    let out = b.binary_mux(&sel, &refs);
    b.output_bus("out", &out);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn one_hot_and_binary_selectors_equivalent_on_power_of_two(
        log_count in 1usize..=3,
        w in 1usize..=6,
        seed in any::<u64>(),
    ) {
        // With a power-of-two choice count every select value is in
        // range, so both constructions compute the same total function.
        let count = 1usize << log_count;
        let mask = (1u64 << w) - 1;
        let choices: Vec<u64> = (0..count as u64)
            .map(|i| seed.rotate_left((i * 11) as u32) & mask)
            .collect();
        let a = CompiledNetlist::compile(&one_hot_selector(&choices, w)).unwrap();
        let b = CompiledNetlist::compile(&binary_selector(&choices, w)).unwrap();
        prop_assert_eq!(a.equivalent(&b), Ok(true));
    }

    #[test]
    fn adder_operand_order_equivalence(w in 1usize..=8) {
        let build = |swap: bool| {
            let mut b = Builder::new();
            let x = b.input_bus("x", w);
            let y = b.input_bus("y", w);
            let s = if swap { b.add_expand(&y, &x) } else { b.add_expand(&x, &y) };
            b.output_bus("s", &s);
            b.finish()
        };
        let a = CompiledNetlist::compile(&build(false)).unwrap();
        let c = CompiledNetlist::compile(&build(true)).unwrap();
        prop_assert_eq!(a.equivalent(&c), Ok(true));
    }

    #[test]
    fn corrupted_constant_is_refuted(w in 2usize..=6, seed in any::<u64>()) {
        // Same circuit but one choice constant differs in one bit:
        // must be detected as inequivalent (the select input can reach it).
        let count = 4usize;
        let mask = (1u64 << w) - 1;
        let choices: Vec<u64> = (0..count as u64)
            .map(|i| seed.rotate_left((i * 13) as u32) & mask)
            .collect();
        let mut corrupted = choices.clone();
        corrupted[(seed % count as u64) as usize] ^= 1 << (seed as usize % w);
        let a = CompiledNetlist::compile(&one_hot_selector(&choices, w)).unwrap();
        let b = CompiledNetlist::compile(&one_hot_selector(&corrupted, w)).unwrap();
        prop_assert_eq!(a.equivalent(&b), Ok(false));
    }

    #[test]
    fn comparator_forms_equivalent(w in 1usize..=8, c_seed in any::<u64>()) {
        // ge_const(x, c) must equal the generic ge(x, const_bus(c)).
        let c = c_seed & ((1u64 << w) - 1);
        let specialized = {
            let mut b = Builder::new();
            let x = b.input_bus("x", w);
            let g = b.ge_const(&x, &Ubig::from(c));
            b.output_bus("g", &[g]);
            b.finish()
        };
        let generic = {
            let mut b = Builder::new();
            let x = b.input_bus("x", w);
            let cb = b.constant_bus(w, &Ubig::from(c));
            let g = b.ge(&x, &cb);
            b.output_bus("g", &[g]);
            b.finish()
        };
        let a = CompiledNetlist::compile(&specialized).unwrap();
        let b = CompiledNetlist::compile(&generic).unwrap();
        prop_assert_eq!(a.equivalent(&b), Ok(true));
    }
}
