//! Parity suite for the block-decoded oracle tables (ISSUE PR 4
//! acceptance): the block-decoding engine and its thread-sharded
//! variant must be indistinguishable from the per-index unranking path
//! — byte for byte, for every n and every worker count.

use hwperm_factoradic::{unrank_u64, BlockDecoder};
use hwperm_verify::{expected_permutation_words, expected_permutation_words_parallel};

/// The per-index reference path: one full factoradic decode + pack per
/// index, exactly what `expected_permutation_words` did before the
/// block-decoding engine.
fn per_index_words(n: usize) -> Vec<u64> {
    let total: u64 = (1..=n as u64).product();
    (0..total)
        .map(|i| {
            unrank_u64(n, i)
                .pack()
                .to_u64()
                .expect("packed width <= 64 for n <= 9")
        })
        .collect()
}

#[test]
fn block_decoded_table_matches_per_index_path_n4_to_n8() {
    for n in 4usize..=8 {
        assert_eq!(expected_permutation_words(n), per_index_words(n), "n = {n}");
    }
}

#[test]
fn chunked_block_decoding_tiles_to_the_per_index_table() {
    // Concatenating blocks of any size must reproduce the per-index
    // table exactly — block boundaries are invisible.
    for n in [4usize, 5, 6] {
        let reference = per_index_words(n);
        let total = reference.len() as u64;
        let mut decoder = BlockDecoder::new(n);
        for block in [1u64, 3, 64, 120, 719] {
            let mut tiled = Vec::new();
            let mut base = 0u64;
            while base < total {
                let end = (base + block).min(total);
                decoder.decode_words_into(base..end, &mut tiled);
                base = end;
            }
            assert_eq!(tiled, reference, "n = {n}, block size {block}");
        }
    }
}

#[test]
fn parallel_table_byte_identical_for_n4_to_n8() {
    // The acceptance sweep at the sizes that run quickly in debug
    // builds; n = 9 (362 880 entries) is covered by the release-gated
    // test below.
    for n in 4usize..=8 {
        let reference = per_index_words(n);
        for workers in [1usize, 2, 3, 8] {
            assert_eq!(
                expected_permutation_words_parallel(n, workers),
                reference,
                "n = {n}, workers = {workers}"
            );
        }
    }
}

#[test]
fn parallel_table_byte_identical_at_n9() {
    // The full acceptance bound: 9! = 362 880 entries. The sharded
    // tables are compared against the per-index reference, so this also
    // covers the sequential block-decoded path (workers = 1).
    let reference = per_index_words(9);
    for workers in [1usize, 2, 3, 8] {
        assert_eq!(
            expected_permutation_words_parallel(9, workers),
            reference,
            "workers = {workers}"
        );
    }
}

#[test]
fn worker_counts_beyond_the_index_space_degrade_gracefully() {
    // More workers than indices: surplus shards are empty, output
    // unchanged.
    let reference = per_index_words(4);
    assert_eq!(expected_permutation_words_parallel(4, 100), reference);
}
