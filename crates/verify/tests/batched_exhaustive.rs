//! Exhaustive batched differential checks of the Fig. 1 converter:
//! every index in `[0, n!)` through the gate-level netlist, 64 lanes
//! per pass, against the software unranker — plus mismatch-reporting
//! parity with the scalar sweep on deliberately broken netlists.

use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{Gate, Simulator};
use hwperm_verify::{
    exhaustive_check_batched, exhaustive_check_scalar, expected_permutation_words,
};

fn converter(n: usize) -> hwperm_logic::Netlist {
    converter_netlist(n, ConverterOptions::default())
}

#[test]
fn converter_n4_to_n6_pass_the_batched_sweep() {
    for n in 4..=6 {
        let netlist = converter(n);
        let expected = expected_permutation_words(n);
        assert_eq!(
            exhaustive_check_batched(&netlist, "index", "perm", &expected),
            Ok(()),
            "n = {n}"
        );
    }
}

#[test]
#[ignore = "n = 7 sweeps 5040 indices through a ~300-gate netlist; run with --ignored"]
fn converter_n7_passes_the_batched_sweep() {
    let netlist = converter(7);
    let expected = expected_permutation_words(7);
    assert_eq!(
        exhaustive_check_batched(&netlist, "index", "perm", &expected),
        Ok(())
    );
}

/// The minimal mismatching index found by a third, independent walk:
/// one scalar simulation per index, no batching, no early-out state.
fn brute_force_first_mismatch(netlist: &hwperm_logic::Netlist, expected: &[u64]) -> Option<u64> {
    let mut sim = Simulator::new(netlist.clone());
    (0u64..expected.len() as u64).find(|&i| {
        sim.set_input_u64("index", i);
        sim.eval();
        sim.read_output("perm").to_u64() != Some(expected[i as usize])
    })
}

/// Swap every And for an Or (and vice versa), one gate at a time, and
/// demand that the batched sweep returns the exact same verdict as the
/// scalar sweep on each mutant — including which index and output the
/// first mismatch is reported at. The batched path scans its 64-lane
/// difference words lowest-lane-first, so ties must break identically.
#[test]
fn first_mismatch_report_is_lane_exact_on_mutants() {
    let netlist = converter(4);
    let expected = expected_permutation_words(4);
    let mut detected = 0usize;
    for (i, gate) in netlist.gates().iter().enumerate() {
        let swapped = match gate {
            Gate::And(a, b) => Gate::Or(*a, *b),
            Gate::Or(a, b) => Gate::And(*a, *b),
            _ => continue,
        };
        let mutant = netlist.with_gate_replaced(i, swapped);
        let batched = exhaustive_check_batched(&mutant, "index", "perm", &expected);
        let scalar = exhaustive_check_scalar(&mutant, "index", "perm", &expected);
        assert_eq!(scalar, batched, "verdicts diverge on mutant of gate {i}");
        if let Err(m) = batched {
            detected += 1;
            assert_eq!(
                Some(m.index),
                brute_force_first_mismatch(&mutant, &expected),
                "gate {i}: batched sweep did not report the minimal index"
            );
            assert_eq!(m.port, "perm");
            assert_ne!(m.got, m.want);
            assert_eq!(m.want, expected[m.index as usize]);
        }
    }
    assert!(
        detected >= 5,
        "only {detected} gate swaps were caught; the oracle has gone soft"
    );
}

/// A mismatch seeded in a specific lane of a specific batch: index 37
/// lives in batch 0's lane 37 at n = 4 (24 indices — so use n = 5,
/// 120 indices: batch 0 covers 0..64, batch 1 covers 64..120). Forcing
/// the expectation wrong at one index must surface exactly that index.
#[test]
fn seeded_expectation_error_pinpoints_its_lane() {
    let netlist = converter(5);
    for &bad in &[0u64, 37, 63, 64, 100, 119] {
        let mut expected = expected_permutation_words(5);
        expected[bad as usize] ^= 1; // poison one index's expectation
        let err = exhaustive_check_batched(&netlist, "index", "perm", &expected)
            .expect_err("poisoned table must fail");
        assert_eq!(err.index, bad, "wrong index surfaced");
        assert_eq!(err.got, err.want ^ 1);
    }
}
