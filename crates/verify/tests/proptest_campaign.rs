//! Property tests for the stuck-at campaign engine: the per-fault
//! verdict list must be byte-identical no matter how the fault
//! universe is sharded across workers. Verdicts are a pure function of
//! (netlist, fault, expectation), so 1, 2, 3, and 8 workers — and the
//! scalar reference path — must all agree on every circuit family the
//! CLI's fault driver covers.

use hwperm_circuits::{
    converter_netlist, ConverterOptions, IndexToCombinationConverter, IndexToVariationConverter,
    PermToIndexConverter, SortingNetwork,
};
use hwperm_logic::Netlist;
use hwperm_perm::packed_is_permutation_u64;
use hwperm_verify::{
    expected_permutation_words, golden_output_words, stuck_at_campaign, stuck_at_campaign_scalar,
};
use proptest::prelude::*;

/// The combinational families the `hwperm faults` driver sweeps;
/// sequential families are excluded because stuck-at campaigns
/// exhaustively enumerate the input space of a stateless tape.
const FAMILIES: [&str; 5] = ["converter", "rank", "combination", "variation", "sort"];

/// Same derived defaults as the CLI's fault driver.
fn family_ports(family: &str, n: usize) -> (Netlist, &'static str, &'static str) {
    let k = n.div_ceil(2);
    let key_width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(2);
    match family {
        "converter" => (
            converter_netlist(n, ConverterOptions::default()),
            "index",
            "perm",
        ),
        "rank" => (
            PermToIndexConverter::new(n).netlist().clone(),
            "perm",
            "index",
        ),
        "combination" => (
            IndexToCombinationConverter::new(n, k).netlist().clone(),
            "index",
            "codeword",
        ),
        "variation" => (
            IndexToVariationConverter::new(n, k).netlist().clone(),
            "index",
            "out",
        ),
        "sort" => (
            SortingNetwork::new(n, key_width).netlist().clone(),
            "data",
            "sorted",
        ),
        other => panic!("unknown family {other:?}"),
    }
}

proptest! {
    // Each case runs five full campaigns at four worker counts plus
    // the scalar reference; small case counts already sweep hundreds
    // of faults per family.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Campaign verdicts are identical across 1, 2, 3, and 8 workers
    /// for every campaign family, and match the scalar
    /// one-fault-at-a-time reference engine.
    #[test]
    fn verdicts_identical_across_worker_counts(n in 2usize..=4) {
        for family in FAMILIES {
            let (netlist, input, output) = family_ports(family, n);
            let expected = golden_output_words(&netlist, input, output);
            let baseline =
                stuck_at_campaign(&netlist, input, output, &expected, None, 1);
            for workers in [2usize, 3, 8] {
                let report =
                    stuck_at_campaign(&netlist, input, output, &expected, None, workers);
                prop_assert_eq!(
                    &report.verdicts,
                    &baseline.verdicts,
                    "{} verdicts differ between 1 and {} workers",
                    family,
                    workers
                );
            }
            let scalar = stuck_at_campaign_scalar(&netlist, input, output, &expected, None);
            prop_assert_eq!(
                &scalar.verdicts,
                &baseline.verdicts,
                "{} scalar engine disagrees with the batched engine",
                family
            );
        }
    }

    /// With the permutation-validity predicate in play (the converter's
    /// silent-fault classification), sharding still must not change a
    /// single verdict: silent witnesses are defined as lowest-index,
    /// independent of chunk boundaries.
    #[test]
    fn converter_predicate_verdicts_shard_invariant(n in 2usize..=5) {
        let (netlist, input, output) = family_ports("converter", n);
        let expected = expected_permutation_words(n);
        let valid = move |word: u64| packed_is_permutation_u64(n, word);
        let baseline = stuck_at_campaign(&netlist, input, output, &expected, Some(&valid), 1);
        for workers in [2usize, 3, 8] {
            let report =
                stuck_at_campaign(&netlist, input, output, &expected, Some(&valid), workers);
            prop_assert_eq!(
                &report.verdicts,
                &baseline.verdicts,
                "predicate verdicts differ between 1 and {} workers",
                workers
            );
        }
        let scalar =
            stuck_at_campaign_scalar(&netlist, input, output, &expected, Some(&valid));
        prop_assert_eq!(
            &scalar.verdicts,
            &baseline.verdicts,
            "scalar predicate engine disagrees with the batched engine"
        );
    }
}
