//! Property tests for the CNF lowering: random combinational netlists
//! must agree with the scalar simulator — the Tseitin encoding, the
//! CDCL solver, and the model decoder are checked against simulation
//! on the full input space of each generated circuit.

use hwperm_logic::{Builder, NetId, Netlist};
use hwperm_verify::{golden_output_words, prove_against_table, ProveOutcome};
use proptest::prelude::*;

/// One random gate: an opcode plus operand selectors, resolved against
/// the nets built so far (modulo indexing keeps every choice in range).
#[derive(Debug, Clone)]
struct GateSpec {
    op: u8,
    a: usize,
    b: usize,
    sel: usize,
}

fn gate_spec() -> impl Strategy<Value = GateSpec> {
    (0u8..6, any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(op, a, b, sel)| GateSpec {
        op,
        a,
        b,
        sel,
    })
}

/// Builds a random combinational netlist over a `w`-bit input bus.
/// The output bus exposes the most recently created nets, so late
/// gates (deep logic) stay observable.
fn random_netlist(w: usize, specs: &[GateSpec]) -> Netlist {
    let mut b = Builder::new();
    let mut nets: Vec<NetId> = b.input_bus("in", w);
    for s in specs {
        let pick = |i: usize| nets[i % nets.len()];
        let (x, y, sel) = (pick(s.a), pick(s.b), pick(s.sel));
        let net = match s.op {
            0 => b.and(x, y),
            1 => b.or(x, y),
            2 => b.xor(x, y),
            3 => b.not(x),
            4 => b.mux(sel, x, y),
            _ => b.constant(s.a % 2 == 1),
        };
        nets.push(net);
    }
    let out_w = nets.len().min(8);
    let out: Vec<NetId> = nets[nets.len() - out_w..].to_vec();
    b.output_bus("out", &out);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_netlists_prove_equal_to_their_own_simulation(
        w in 2usize..=6,
        specs in prop::collection::vec(gate_spec(), 1..40),
    ) {
        // The table is what the scalar simulator computes over the full
        // input space; CNF-encode + solve must close it as a theorem.
        let netlist = random_netlist(w, &specs);
        let table = golden_output_words(&netlist, "in", "out");
        let out = prove_against_table(&netlist, "in", "out", &table).unwrap();
        prop_assert!(
            matches!(out, ProveOutcome::Proved(_)),
            "SAT disagrees with the simulator: {:?}", out
        );
    }

    #[test]
    fn corrupted_tables_are_refuted_at_the_corrupted_index(
        w in 2usize..=6,
        specs in prop::collection::vec(gate_spec(), 1..40),
        corrupt in any::<u64>(),
    ) {
        // Flip one bit of one table entry: the only satisfying
        // assignment of the miter is that index, and the decoded
        // counterexample must replay against the simulator's word.
        let netlist = random_netlist(w, &specs);
        let mut table = golden_output_words(&netlist, "in", "out");
        let out_bits = netlist.output_port("out").unwrap().nets.len();
        let idx = (corrupt % table.len() as u64) as usize;
        let bit = (corrupt >> 32) as usize % out_bits;
        table[idx] ^= 1u64 << bit;
        let out = prove_against_table(&netlist, "in", "out", &table).unwrap();
        let ProveOutcome::Refuted(cx, _) = out else {
            panic!("not refuted: {out:?}");
        };
        prop_assert_eq!(cx.index, idx as u64);
        prop_assert_eq!(cx.got, table[idx] ^ (1u64 << bit), "witness must be the simulated word");
        prop_assert_eq!(cx.want, table[idx]);
    }
}
