//! SAT-backed theorems: the CDCL miter discharges the same obligations
//! the BDD engine proves in `prove_converter.rs`, and — the part BDDs
//! cannot do cheaply — *refutes* every single-gate mutant of the
//! converter with a decoded counterexample that replays on the scalar
//! simulator.

use hwperm_bignum::Ubig;
use hwperm_circuits::{converter_netlist, ConverterOptions, PermToIndexConverter};
use hwperm_logic::{Gate, Simulator};
use hwperm_verify::{
    expected_permutation_words, prove_against_table, prove_equivalent, prove_inverse_identity,
    prove_pipelined_equivalent, ProveOutcome,
};

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

#[test]
fn converter_n5_table_conformance_proved() {
    let netlist = converter_netlist(5, ConverterOptions::default());
    let expected = expected_permutation_words(5);
    let out = prove_against_table(&netlist, "index", "perm", &expected).unwrap();
    let ProveOutcome::Proved(stats) = out else {
        panic!("converter n = 5 not proved: {out:?}");
    };
    assert!(stats.vars > 0 && stats.clauses > stats.vars);
}

#[test]
fn converter_n6_table_conformance_proved() {
    let netlist = converter_netlist(6, ConverterOptions::default());
    let expected = expected_permutation_words(6);
    let out = prove_against_table(&netlist, "index", "perm", &expected).unwrap();
    assert!(matches!(out, ProveOutcome::Proved(_)), "{out:?}");
}

#[test]
fn rank_unrank_roundtrip_identity_proved() {
    let conv = converter_netlist(5, ConverterOptions::default());
    let rank = PermToIndexConverter::new(5).netlist().clone();
    let out = prove_inverse_identity(
        &conv,
        "index",
        "perm",
        &rank,
        "perm",
        "index",
        factorial(5),
        None,
    )
    .unwrap();
    assert!(matches!(out, ProveOutcome::Proved(_)), "{out:?}");
}

#[test]
fn pipelined_converter_bmc_equals_combinational_twin() {
    let pipe = converter_netlist(
        4,
        ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        },
    );
    let comb = converter_netlist(4, ConverterOptions::default());
    let out =
        prove_pipelined_equivalent(&pipe, &comb, "index", "perm", 3, factorial(4), None).unwrap();
    assert!(matches!(out, ProveOutcome::Proved(_)), "{out:?}");
}

#[test]
fn independent_converter_builds_proved_equivalent() {
    let a = converter_netlist(5, ConverterOptions::default());
    let b = converter_netlist(5, ConverterOptions::default());
    let out = prove_equivalent(&a, &b).unwrap();
    assert!(matches!(out, ProveOutcome::Proved(_)), "{out:?}");
}

/// The same-fanin gate corruption corpus as
/// `crates/circuits/tests/mutation.rs`.
fn mutate(gate: Gate) -> Option<Gate> {
    match gate {
        Gate::And(a, b) => Some(Gate::Or(a, b)),
        Gate::Or(a, b) => Some(Gate::And(a, b)),
        Gate::Xor(a, b) => Some(Gate::Or(a, b)),
        Gate::Not(a) => Some(Gate::And(a, a)), // identity instead of inversion
        Gate::Mux { sel, a, b } => Some(Gate::Mux { sel, a: b, b: a }),
        Gate::Const(v) => Some(Gate::Const(!v)),
        Gate::Input | Gate::Dff { .. } => None,
    }
}

#[test]
fn every_live_mutant_is_refuted_with_a_replayable_counterexample() {
    // The acceptance bar of this PR: SAT refutes every live single-gate
    // mutant the exhaustive sweep catches, and each counterexample
    // *replays* — simulating the mutant at the witness index reproduces
    // `got`, and the oracle table pins `want`. This makes the decoded
    // witness as trustworthy as an exhaustive-sweep first mismatch.
    let netlist = converter_netlist(4, ConverterOptions::default());
    let expected = expected_permutation_words(4);
    let live = netlist.live_mask();
    let mut mutants = 0;
    for (i, &gate) in netlist.gates().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let Some(mutated_gate) = mutate(gate) else {
            continue;
        };
        if mutated_gate == gate {
            continue;
        }
        mutants += 1;
        let mutant = netlist.with_gate_replaced(i, mutated_gate);
        let out = prove_against_table(&mutant, "index", "perm", &expected).unwrap();
        let ProveOutcome::Refuted(cx, _) = out else {
            panic!("mutant at gate {i} was not refuted: {out:?}");
        };
        assert_eq!(cx.port, "perm", "gate {i}");
        assert!(cx.index < expected.len() as u64, "gate {i}: {cx:?}");
        assert_eq!(cx.want, expected[cx.index as usize], "gate {i}: {cx:?}");
        assert_ne!(cx.got, cx.want, "gate {i}: vacuous counterexample {cx:?}");
        // Replay the witness on the scalar simulator.
        let mut sim = Simulator::new(mutant);
        sim.set_input("index", &Ubig::from(cx.index));
        sim.eval();
        assert_eq!(
            sim.read_output("perm").to_u64(),
            Some(cx.got),
            "gate {i}: counterexample does not replay: {cx:?}"
        );
    }
    assert!(mutants > 40, "mutant population too small: {mutants}");
}

#[test]
fn counterexample_display_matches_the_exhaustive_sweep_format() {
    // Corrupt one oracle entry: the SAT witness must land on exactly
    // that index, and its Display must use the exhaustive-sweep
    // first-mismatch wording so CLI output stays uniform across the
    // simulation and formal paths.
    let netlist = converter_netlist(4, ConverterOptions::default());
    let mut expected = expected_permutation_words(4);
    expected[17] ^= 1;
    let out = prove_against_table(&netlist, "index", "perm", &expected).unwrap();
    let ProveOutcome::Refuted(cx, _) = out else {
        panic!("corrupted table not refuted: {out:?}");
    };
    assert_eq!(cx.index, 17);
    let shown = cx.to_string();
    assert!(
        shown.contains("index 17") && shown.contains("expected"),
        "unexpected witness format: {shown}"
    );
}
