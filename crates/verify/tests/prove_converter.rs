//! The headline theorems: complete, non-sampled verification of the
//! generated circuits against their mathematical specifications.

use hwperm_bignum::Ubig;
use hwperm_circuits::{converter_netlist, ConverterOptions, PermToIndexConverter};
use hwperm_factoradic::{factorials_u64, rank_u64, unrank_u64};
use hwperm_verify::CompiledNetlist;
use std::collections::BTreeMap;

/// Proves: for every in-range index, the Fig. 1 netlist emits exactly
/// the packed word of the software-unranked permutation. (Out-of-range
/// indices are don't-cares, as in the paper.)
fn prove_converter(n: usize) {
    let netlist = converter_netlist(n, ConverterOptions::default());
    let compiled =
        CompiledNetlist::compile(&netlist).unwrap_or_else(|e| panic!("compile n = {n}: {e}"));
    let nfact = factorials_u64(n)[n];
    let counterexample = compiled.verify_against_spec(
        |index| index.to_u64().is_some_and(|i| i < nfact),
        |index| {
            let perm = unrank_u64(n, index.to_u64().unwrap());
            BTreeMap::from([("perm".to_string(), perm.pack())])
        },
    );
    assert_eq!(counterexample, None, "converter n = {n} violates its spec");
}

#[test]
fn converter_n4_formally_verified() {
    prove_converter(4);
}

#[test]
fn converter_n5_formally_verified() {
    prove_converter(5);
}

#[test]
fn converter_n6_formally_verified() {
    prove_converter(6);
}

#[test]
fn rank_circuit_n4_formally_verified() {
    // The inverse circuit: for every *valid* packed permutation word the
    // output index equals the software rank. Non-permutation words are
    // don't-cares.
    let conv = PermToIndexConverter::new(4);
    let compiled = CompiledNetlist::compile(conv.netlist()).unwrap();
    let is_perm = |word: &Ubig| hwperm_perm::Permutation::unpack(4, word).is_ok();
    let counterexample = compiled.verify_against_spec(
        |word| is_perm(word),
        |word| {
            let perm = hwperm_perm::Permutation::unpack(4, word).unwrap();
            BTreeMap::from([("index".to_string(), Ubig::from(rank_u64(&perm)))])
        },
    );
    assert_eq!(counterexample, None);
}

#[test]
fn two_converter_builds_are_equivalent() {
    // Equivalence between independently generated instances (build
    // determinism plus BDD comparison exercising the cross-manager path).
    let a = CompiledNetlist::compile(&converter_netlist(5, ConverterOptions::default())).unwrap();
    let b = CompiledNetlist::compile(&converter_netlist(5, ConverterOptions::default())).unwrap();
    assert_eq!(a.equivalent(&b), Ok(true));
}

#[test]
fn converters_of_different_sizes_are_not_comparable() {
    let a = CompiledNetlist::compile(&converter_netlist(4, ConverterOptions::default())).unwrap();
    let b = CompiledNetlist::compile(&converter_netlist(5, ConverterOptions::default())).unwrap();
    assert!(a.equivalent(&b).is_err());
}

#[test]
fn variation_converter_n5_k2_formally_verified() {
    use hwperm_circuits::IndexToVariationConverter;
    use hwperm_factoradic::unrank_variation;
    let conv = IndexToVariationConverter::new(5, 2);
    let compiled = CompiledNetlist::compile(conv.netlist()).unwrap();
    let total = 20u64;
    let counterexample = compiled.verify_against_spec(
        |index| index.to_u64().is_some_and(|i| i < total),
        |index| {
            let v = unrank_variation(5, 2, index);
            // Pack like the circuit: position 0 in the high field, 3 bits
            // per element (n = 5).
            let mut word = Ubig::zero();
            for (p, &e) in v.iter().enumerate() {
                let base = (v.len() - 1 - p) * 3;
                for bit in 0..3 {
                    if (e >> bit) & 1 == 1 {
                        word.set_bit(base + bit, true);
                    }
                }
            }
            BTreeMap::from([("out".to_string(), word)])
        },
    );
    assert_eq!(counterexample, None);
}
