//! Single-stuck-at fault campaigns over combinational netlists.
//!
//! A campaign answers the robustness question the exhaustive sweeps
//! cannot: *if a gate breaks, does the output betray it?* For every
//! fault in the single-stuck-at universe (each net stuck at 0 and at
//! 1), the campaign sweeps the whole index space through a batched
//! fault overlay — **one fault per lane**, so one tape walk retires 64
//! faults through the [`FaultBatchSim`] alias and 256/512 through the
//! wide words ([`stuck_at_campaign_wide`]) — and classifies the fault
//! against the golden expectation:
//!
//! - **detected** — the output diverges somewhere, and every divergence
//!   fails the cheap validity predicate (a runtime guard would always
//!   catch it);
//! - **silent** — some divergence passes the validity predicate: the
//!   output is a well-formed word that is simply *wrong* (the dangerous
//!   class a validity-only guard cannot see);
//! - **masked** — the output never diverges (logic downstream absorbs
//!   the fault).
//!
//! Without a validity predicate every divergence counts as detected,
//! so `detected + silent` is always "the fault is observable at the
//! output" — the classic fault-coverage numerator.
//!
//! Witnesses are deterministic: each fault reports the lowest diverging
//! index (and, for silent faults, the lowest *validly* diverging
//! index). Sharding follows the same contiguous ascending
//! `shard_ranges` split as the exhaustive sweeps; verdicts are
//! per-fault and independent of batch companions — and independent of
//! lane *width* — so the report is byte-identical for every worker
//! count and every `SimWord` width.
//!
//! Campaigns always run the canonical (unfused) tape: faults target
//! arbitrary nets, and opcode fusion elides nets, which would make the
//! fault universe unresolvable.

use crate::exhaustive::port_width_checked;
use crate::parallel::shard_ranges;
use hwperm_faults::{FaultSpec, FaultySim, OverlaySim};
use hwperm_logic::{BatchSimulator, NetId, Netlist, SimProgram, SimWord, LANES};
use std::sync::Arc;

#[cfg(doc)]
use hwperm_faults::FaultBatchSim;

/// How one fault manifested over the exhaustive index sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Output diverged, and every divergence failed the validity
    /// predicate. `witness` is the lowest diverging index.
    Detected {
        /// Lowest index at which the faulted output diverges.
        witness: u64,
    },
    /// Some divergence passed the validity predicate — a well-formed
    /// but wrong word. `witness` is the lowest such index.
    Silent {
        /// Lowest index at which the faulted output is valid but wrong.
        witness: u64,
    },
    /// The output never diverged from the golden table.
    Masked,
}

/// One fault paired with its campaign verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultVerdict {
    /// The injected fault.
    pub fault: FaultSpec,
    /// What the sweep observed.
    pub outcome: FaultOutcome,
}

/// The full campaign result: one verdict per fault, in universe order
/// (net-major, stuck-at-0 before stuck-at-1).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-fault verdicts, in fault-universe order.
    pub verdicts: Vec<FaultVerdict>,
}

impl CampaignReport {
    /// Faults in the universe.
    pub fn total(&self) -> usize {
        self.verdicts.len()
    }

    /// Faults observable and always invalid at the output.
    pub fn detected(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.outcome, FaultOutcome::Detected { .. }))
            .count()
    }

    /// Faults observable as valid-but-wrong words.
    pub fn silent(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.outcome, FaultOutcome::Silent { .. }))
            .count()
    }

    /// Faults never observable at the output.
    pub fn masked(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.outcome == FaultOutcome::Masked)
            .count()
    }

    /// Classic fault coverage: observable faults (detected + silent)
    /// over the whole universe, in percent. 100 for an empty universe.
    pub fn coverage_percent(&self) -> f64 {
        if self.verdicts.is_empty() {
            return 100.0;
        }
        (self.detected() + self.silent()) as f64 * 100.0 / self.total() as f64
    }

    /// How much of the observable universe a validity-only runtime
    /// guard catches: detected over (detected + silent), in percent.
    /// 100 when nothing is observable.
    pub fn guard_coverage_percent(&self) -> f64 {
        let observable = self.detected() + self.silent();
        if observable == 0 {
            return 100.0;
        }
        self.detected() as f64 * 100.0 / observable as f64
    }

    /// The silent faults, in universe order — the list a guard designer
    /// has to worry about.
    pub fn silent_faults(&self) -> impl Iterator<Item = &FaultVerdict> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.outcome, FaultOutcome::Silent { .. }))
    }
}

/// The single-stuck-at fault universe of a netlist: stuck-at-0 and
/// stuck-at-1 on every net, net-major (`2 · nets` faults).
pub fn single_stuck_at_universe(netlist: &Netlist) -> Vec<FaultSpec> {
    (0..netlist.len() as u32)
        .flat_map(|i| {
            [false, true].map(|value| FaultSpec::StuckAt {
                net: NetId::forged(i),
                value,
            })
        })
        .collect()
}

/// Sweeps one contiguous slice of the fault universe,
/// [`SimWord::LANES`] faults per chunk, and returns its verdicts in
/// slice order. Verdicts and witnesses depend only on the per-fault
/// lane, never on batch companions, so every width produces the same
/// output.
fn campaign_range<W: SimWord>(
    program: &Arc<SimProgram>,
    faults: &[FaultSpec],
    input: &str,
    output: &str,
    expected: &[u64],
    valid: Option<&(dyn Fn(u64) -> bool + Sync)>,
) -> Vec<FaultVerdict> {
    let mut out = Vec::with_capacity(faults.len());
    for chunk in faults.chunks(W::LANES) {
        let mut sim = OverlaySim::<W>::batched(Arc::clone(program), chunk);
        let mut first_diverge: Vec<Option<u64>> = vec![None; chunk.len()];
        let mut first_silent: Vec<Option<u64>> = vec![None; chunk.len()];
        // Lanes that might still change their verdict: all of them at
        // first; a lane retires once its strongest classification is
        // settled (divergence seen, and — when a validity predicate is
        // in play — a valid divergence seen).
        let mut unresolved = W::mask_lanes(chunk.len());
        for (index, &want) in expected.iter().enumerate() {
            sim.set_input_all_lanes_u64(input, index as u64);
            sim.eval();
            let got_words = sim.read_output_words(output);
            let mut diff = W::zero();
            for (bit, &got) in got_words.iter().enumerate() {
                diff = diff | (got ^ W::splat((want >> bit) & 1 == 1));
            }
            let mut pending = diff & unresolved;
            while let Some(lane) = pending.first_lane() {
                pending.set_lane(lane, false);
                if first_diverge[lane].is_none() {
                    first_diverge[lane] = Some(index as u64);
                }
                match valid {
                    None => unresolved.set_lane(lane, false),
                    Some(valid) => {
                        let got = got_words
                            .iter()
                            .enumerate()
                            .fold(0u64, |acc, (bit, &w)| acc | ((w.lane(lane) as u64) << bit));
                        if valid(got) {
                            first_silent[lane] = Some(index as u64);
                            unresolved.set_lane(lane, false);
                        }
                    }
                }
            }
            if !unresolved.any() {
                break;
            }
        }
        for (lane, &fault) in chunk.iter().enumerate() {
            let outcome = match (first_diverge[lane], first_silent[lane]) {
                (None, _) => FaultOutcome::Masked,
                (Some(_), Some(witness)) => FaultOutcome::Silent { witness },
                (Some(witness), None) => FaultOutcome::Detected { witness },
            };
            out.push(FaultVerdict { fault, outcome });
        }
    }
    out
}

/// Checks campaign preconditions and compiles the shared tape.
fn campaign_program(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
) -> Arc<SimProgram> {
    assert!(
        netlist.register_count() == 0,
        "stuck-at campaigns require a combinational netlist ({} DFFs present)",
        netlist.register_count()
    );
    port_width_checked(netlist, input, output, expected.len());
    SimProgram::compile_shared(netlist.clone())
}

/// Runs the single-stuck-at campaign over `netlist`, sweeping every
/// fault against `expected` (element `i` = golden output word at input
/// index `i`) on `workers` threads. `valid` is the optional cheap
/// validity predicate a runtime guard would apply (e.g. packed
/// permutation validity); with `None`, every observable fault counts
/// as detected.
///
/// Deterministic: the report is byte-identical for every worker count.
///
/// # Panics
/// Panics if `workers == 0`, the netlist has registers, either port is
/// missing, the input port cannot represent every index, or either
/// port exceeds the 64-bit `u64` fast path.
pub fn stuck_at_campaign(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
    valid: Option<&(dyn Fn(u64) -> bool + Sync)>,
    workers: usize,
) -> CampaignReport {
    stuck_at_campaign_wide::<u64>(netlist, input, output, expected, valid, workers)
}

/// Width-generic [`stuck_at_campaign`]: each worker retires
/// [`SimWord::LANES`] faults per tape walk — 64 at `u64`, 256 at
/// [`W256`](hwperm_logic::W256), 512 at [`W512`](hwperm_logic::W512).
/// The report is byte-identical across widths (verdicts and witnesses
/// are per-lane, never influenced by batch companions) as well as
/// across worker counts.
///
/// # Panics
/// Same conditions as [`stuck_at_campaign`].
pub fn stuck_at_campaign_wide<W: SimWord + Send + Sync>(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
    valid: Option<&(dyn Fn(u64) -> bool + Sync)>,
    workers: usize,
) -> CampaignReport {
    let program = campaign_program(netlist, input, output, expected);
    let universe = single_stuck_at_universe(netlist);
    let shards = shard_ranges(universe.len(), workers);
    let chunks: Vec<Vec<FaultVerdict>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let program = Arc::clone(&program);
                let faults = &universe[shard];
                scope.spawn(move || {
                    campaign_range::<W>(&program, faults, input, output, expected, valid)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    CampaignReport {
        verdicts: chunks.concat(),
    }
}

/// Scalar reference implementation of [`stuck_at_campaign`]: one
/// [`FaultySim`] per fault, one tape walk per (fault, index) pair. Kept
/// for verdict parity and as the baseline side of `tables faultbench`.
///
/// # Panics
/// Same conditions as [`stuck_at_campaign`] (minus `workers`).
pub fn stuck_at_campaign_scalar(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
    valid: Option<&(dyn Fn(u64) -> bool + Sync)>,
) -> CampaignReport {
    let program = campaign_program(netlist, input, output, expected);
    let verdicts = single_stuck_at_universe(netlist)
        .into_iter()
        .map(|fault| {
            let mut sim = FaultySim::new(Arc::clone(&program), &[fault]);
            let mut first_diverge = None;
            let mut first_silent = None;
            for (index, &want) in expected.iter().enumerate() {
                sim.set_input_u64(input, index as u64);
                sim.eval();
                let got = sim.read_output_u64(output);
                if got != want {
                    if first_diverge.is_none() {
                        first_diverge = Some(index as u64);
                    }
                    match valid {
                        None => break,
                        Some(valid) if valid(got) => {
                            first_silent = Some(index as u64);
                            break;
                        }
                        Some(_) => {}
                    }
                }
            }
            let outcome = match (first_diverge, first_silent) {
                (None, _) => FaultOutcome::Masked,
                (Some(_), Some(witness)) => FaultOutcome::Silent { witness },
                (Some(witness), None) => FaultOutcome::Detected { witness },
            };
            FaultVerdict { fault, outcome }
        })
        .collect();
    CampaignReport { verdicts }
}

/// The fault-free output table of a combinational netlist: output word
/// for every input value `0..2^w` in order, swept 64 indices per walk.
/// This is the self-golden expectation for circuit families without an
/// independent oracle (the campaign then measures divergence from the
/// healthy circuit).
///
/// # Panics
/// Panics if the netlist has registers, either port is missing, the
/// input port is wider than 16 bits (the sweep would exceed 2¹⁶
/// indices), or the output port exceeds 64 bits.
pub fn golden_output_words(netlist: &Netlist, input: &str, output: &str) -> Vec<u64> {
    let w = netlist
        .input_port(input)
        .unwrap_or_else(|| panic!("no input port named {input:?}"))
        .nets
        .len();
    assert!(
        w <= 16,
        "golden sweep of the {w}-bit input port {input:?} is too wide (max 16 bits)"
    );
    let total = 1usize << w;
    let mut sim = BatchSimulator::new(netlist.clone());
    let mut out = Vec::with_capacity(total);
    let mut lanes = Vec::with_capacity(LANES);
    for base in (0..total).step_by(LANES) {
        let len = LANES.min(total - base);
        lanes.clear();
        lanes.extend((base..base + len).map(|i| i as u64));
        sim.set_input_lanes_u64(input, &lanes);
        sim.eval();
        let words = sim.read_output_lanes_u64(output);
        out.extend_from_slice(&words[..len]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::expected_permutation_words;
    use hwperm_circuits::{converter_netlist, ConverterOptions};
    use hwperm_logic::Builder;
    use hwperm_perm::packed_is_permutation_u64;

    fn converter_campaign(n: usize, workers: usize) -> CampaignReport {
        let nl = converter_netlist(n, ConverterOptions::default());
        let expected = expected_permutation_words(n);
        let valid = move |word: u64| packed_is_permutation_u64(n, word);
        stuck_at_campaign(&nl, "index", "perm", &expected, Some(&valid), workers)
    }

    #[test]
    fn universe_is_net_major_sa0_first() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let g = b.and(x[0], x[1]);
        b.output_bus("y", &[g]);
        let universe = single_stuck_at_universe(&b.finish());
        assert_eq!(universe.len(), 6);
        assert_eq!(
            universe[4],
            FaultSpec::StuckAt {
                net: NetId::forged(2),
                value: false
            }
        );
        assert_eq!(
            universe[5],
            FaultSpec::StuckAt {
                net: NetId::forged(2),
                value: true
            }
        );
    }

    #[test]
    fn single_and_gate_verdicts_are_exact() {
        // y = x0 & x1 over indices 0..4 (x = index bits).
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let g = b.and(x[0], x[1]);
        b.output_bus("y", &[g]);
        let nl = b.finish();
        let expected = golden_output_words(&nl, "x", "y");
        assert_eq!(expected, [0, 0, 0, 1]);
        let report = stuck_at_campaign(&nl, "x", "y", &expected, None, 2);
        // Every fault in this tiny universe is observable.
        assert_eq!(report.total(), 6);
        assert_eq!(report.detected(), 6);
        assert_eq!(report.coverage_percent(), 100.0);
        // x0 stuck-at-0: first divergence at index 3 (1 & 1 → 0 & 1).
        assert_eq!(
            report.verdicts[0].outcome,
            FaultOutcome::Detected { witness: 3 }
        );
        // Output stuck-at-1: diverges immediately at index 0.
        assert_eq!(
            report.verdicts[5].outcome,
            FaultOutcome::Detected { witness: 0 }
        );
    }

    #[test]
    fn masked_faults_are_reported() {
        // y = x0 | (x0 & x1): the AND leg is redundant, so its output
        // stuck-at-0 is masked (x0=1 forces y=1 through the OR either
        // way; x0=0 makes the AND 0 anyway).
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let g = b.and(x[0], x[1]);
        let y = b.or(x[0], g);
        b.output_bus("y", &[y]);
        let nl = b.finish();
        let expected = golden_output_words(&nl, "x", "y");
        let report = stuck_at_campaign(&nl, "x", "y", &expected, None, 1);
        let and_sa0 = report
            .verdicts
            .iter()
            .find(|v| {
                v.fault
                    == FaultSpec::StuckAt {
                        net: NetId::forged(2),
                        value: false,
                    }
            })
            .unwrap();
        assert_eq!(and_sa0.outcome, FaultOutcome::Masked);
        assert!(report.masked() >= 1);
        assert!(report.coverage_percent() < 100.0);
    }

    #[test]
    fn batched_campaign_matches_scalar_reference() {
        let n = 4;
        let nl = converter_netlist(n, ConverterOptions::default());
        let expected = expected_permutation_words(n);
        let valid = move |word: u64| packed_is_permutation_u64(n, word);
        let batched = stuck_at_campaign(&nl, "index", "perm", &expected, Some(&valid), 3);
        let scalar = stuck_at_campaign_scalar(&nl, "index", "perm", &expected, Some(&valid));
        assert_eq!(batched, scalar);
    }

    #[test]
    fn campaign_verdicts_byte_identical_across_widths() {
        use hwperm_logic::{W256, W512};
        // Satellite regression: the report — every verdict, every
        // witness, in universe order — must not depend on the lane
        // width the campaign happened to run at.
        let n = 4;
        let nl = converter_netlist(n, ConverterOptions::default());
        let expected = expected_permutation_words(n);
        let valid = move |word: u64| packed_is_permutation_u64(n, word);
        let narrow = stuck_at_campaign(&nl, "index", "perm", &expected, Some(&valid), 2);
        let w256 = stuck_at_campaign_wide::<W256>(&nl, "index", "perm", &expected, Some(&valid), 2);
        let w512 = stuck_at_campaign_wide::<W512>(&nl, "index", "perm", &expected, Some(&valid), 2);
        assert_eq!(narrow, w256);
        assert_eq!(narrow, w512);
        // And without a validity predicate, where the retirement logic
        // takes the other branch.
        let narrow = stuck_at_campaign(&nl, "index", "perm", &expected, None, 3);
        let w256 = stuck_at_campaign_wide::<W256>(&nl, "index", "perm", &expected, None, 3);
        assert_eq!(narrow, w256);
    }

    #[test]
    fn converter_campaign_deterministic_across_worker_counts() {
        let baseline = converter_campaign(4, 1);
        for workers in [2usize, 3, 8] {
            assert_eq!(
                converter_campaign(4, workers),
                baseline,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn n5_converter_coverage_meets_the_95_percent_floor() {
        // The acceptance criterion: ≥ 95% single-stuck-at coverage
        // against the exhaustive block-decoded oracle, every silent
        // fault carrying a deterministic witness.
        let report = converter_campaign(5, 4);
        let coverage = report.coverage_percent();
        assert!(
            coverage >= 95.0,
            "n = 5 converter coverage {coverage:.2}% below the 95% floor \
             ({} detected / {} silent / {} masked of {})",
            report.detected(),
            report.silent(),
            report.masked(),
            report.total()
        );
        for v in report.silent_faults() {
            assert!(
                matches!(v.outcome, FaultOutcome::Silent { witness } if witness < 120),
                "silent fault {} must carry an in-range witness",
                v.fault
            );
        }
    }

    #[test]
    fn silent_faults_exist_on_the_converter_and_pass_validity() {
        // Stuck-at faults inside the index datapath turn one valid
        // permutation into another: the campaign must classify at least
        // one of them as silent for the validity-guard story to matter.
        let report = converter_campaign(4, 2);
        assert!(
            report.silent() > 0,
            "expected silent faults on the converter"
        );
        assert!(report.guard_coverage_percent() < 100.0);
    }

    #[test]
    fn golden_words_of_a_passthrough_are_the_identity() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 7);
        b.output_bus("y", &x);
        let nl = b.finish();
        let golden = golden_output_words(&nl, "x", "y");
        assert_eq!(golden.len(), 128);
        assert!(golden.iter().enumerate().all(|(i, &w)| w == i as u64));
    }

    #[test]
    #[should_panic(expected = "stuck-at campaigns require a combinational netlist")]
    fn sequential_netlists_are_rejected() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let q = b.dff(x[0], false);
        b.output_bus("y", &[q]);
        let _ = stuck_at_campaign(&b.finish(), "x", "y", &[0, 0], None, 1);
    }
}
