//! Batched exhaustive differential checking.
//!
//! BDD equivalence (the rest of this crate) proves properties
//! symbolically; this module is the *simulation* side of the house:
//! sweep every index through the gate-level netlist and compare against
//! a precomputed expectation table. The scalar sweep pays one full
//! netlist walk per index; the batched sweep drives a word-level
//! [`BatchSim`] with [`SimWord::LANES`] consecutive indices per pass,
//! so the same walk settles 64 (`u64`), 256 ([`W256`]) or 512
//! ([`W512`]) simulations — the lever that keeps exhaustive converter
//! checks affordable past n = 4 (n = 6 is 720 indices, n = 7 is 5040).
//! The width-generic entry points ([`exhaustive_check_batched_wide`])
//! additionally run the opcode-fused tape
//! ([`SimProgram::compile_fused`]), which shrinks the op stream the
//! sweep walks; fusion preserves every output port, so verdicts and
//! witnesses are unchanged.
//!
//! All sweeps report the *first* mismatching index (batched: lowest
//! base, then lowest lane — i.e. the same index order as the scalar
//! sweep, at every lane width), so a fault has one canonical witness
//! regardless of path.
//!
//! The expectation table is data, not a closure, so the timed region of
//! a scalar-vs-batched benchmark measures simulation throughput alone —
//! software unranking cost is paid once, outside both sweeps. Table
//! generation itself lives in the oracle module
//! ([`crate::expected_permutation_words`] — block-decoded, with a
//! thread-sharded variant).

use hwperm_bignum::Ubig;
use hwperm_logic::{BatchSim, BatchSimulator, Netlist, SimProgram, SimWord, Simulator, LANES};
use std::fmt;

#[cfg(doc)]
use hwperm_logic::{W256, W512};

/// First divergence found by an exhaustive differential sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustiveMismatch {
    /// The lowest input index whose output diverges.
    pub index: u64,
    /// The output port that diverged.
    pub port: String,
    /// What the netlist produced at that index.
    pub got: u64,
    /// What the expectation table said it should produce.
    pub want: u64,
}

impl fmt::Display for ExhaustiveMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "index {}: output {:?} = {:#x}, expected {:#x}",
            self.index, self.port, self.got, self.want
        )
    }
}

impl std::error::Error for ExhaustiveMismatch {}

pub(crate) fn port_width_checked(
    netlist: &Netlist,
    input: &str,
    output: &str,
    total: usize,
) -> usize {
    let in_w = netlist
        .input_port(input)
        .unwrap_or_else(|| panic!("no input port named {input:?}"))
        .nets
        .len();
    let out_w = netlist
        .output_port(output)
        .unwrap_or_else(|| panic!("no output port named {output:?}"))
        .nets
        .len();
    assert!(
        in_w < 64 && out_w <= 64,
        "ports {input:?} ({in_w} bits) / {output:?} ({out_w} bits) exceed the u64 sweep"
    );
    assert!(
        in_w == 63 || (total as u64) <= 1u64 << in_w,
        "{total} indices do not fit input port {input:?} ({in_w} bits)"
    );
    in_w
}

/// An expectation table pre-transposed into the word domain: per batch
/// of [`SimWord::LANES`] consecutive indices, the lane words of every
/// input bit (the indices themselves) and every expected output bit.
///
/// Transposing is pure data preparation — it depends only on the table,
/// not the netlist — so hoisting it out of the sweep leaves
/// [`exhaustive_check_batched_with`]'s steady state at one word-level
/// netlist walk plus `out_bits` XOR/AND ops per `LANES` indices.
/// Prepare once, sweep many netlists (the mutation suites) or many
/// repetitions (the throughput benchmark) against it.
///
/// The word type is the lane width: `WideExpectation<u64>` (the
/// [`BatchedExpectation`] alias) packs 64 indices per batch,
/// `WideExpectation<W256>` 256, `WideExpectation<W512>` 512. Index
/// values themselves stay `u64` at every width — the lane count and the
/// value domain are independent axes.
#[derive(Debug, Clone)]
pub struct WideExpectation<W: SimWord> {
    /// The original per-index table (witness extraction on mismatch).
    per_index: Vec<u64>,
    in_bits: usize,
    out_bits: usize,
    /// Batch-major `[batch][in_bit]` lane words of the index values.
    in_words: Vec<W>,
    /// Batch-major `[batch][out_bit]` lane words of the expected outputs.
    want_words: Vec<W>,
    /// Per-batch mask of lanes that carry a real index.
    live: Vec<W>,
}

/// The 64-lane expectation table — the original name, kept as the
/// `u64` instantiation of [`WideExpectation`].
pub type BatchedExpectation = WideExpectation<u64>;

impl<W: SimWord> WideExpectation<W> {
    /// Transposes `expected` (element `i` = expected output word at
    /// input index `i`) for ports of `in_bits` input and `out_bits`
    /// output bits.
    ///
    /// # Panics
    /// Panics if the widths exceed the `u64` sweep or the input port
    /// cannot represent every index.
    pub fn new(in_bits: usize, out_bits: usize, expected: &[u64]) -> Self {
        assert!(
            in_bits < 64 && out_bits <= 64,
            "{in_bits}-bit input / {out_bits}-bit output exceed the u64 sweep"
        );
        assert!(
            in_bits == 63 || (expected.len() as u64) <= 1u64 << in_bits,
            "{} indices do not fit a {in_bits}-bit input port",
            expected.len()
        );
        let batches = expected.len().div_ceil(W::LANES);
        let mut in_words = vec![W::zero(); batches * in_bits];
        let mut want_words = vec![W::zero(); batches * out_bits];
        let mut live = vec![W::zero(); batches];
        for (index, &want) in expected.iter().enumerate() {
            let (batch, lane) = (index / W::LANES, index % W::LANES);
            live[batch].set_lane(lane, true);
            for (b, word) in in_words[batch * in_bits..][..in_bits]
                .iter_mut()
                .enumerate()
            {
                word.set_lane(lane, (index >> b) & 1 == 1);
            }
            for (b, word) in want_words[batch * out_bits..][..out_bits]
                .iter_mut()
                .enumerate()
            {
                word.set_lane(lane, (want >> b) & 1 == 1);
            }
        }
        WideExpectation {
            per_index: expected.to_vec(),
            in_bits,
            out_bits,
            in_words,
            want_words,
            live,
        }
    }

    /// Number of indices covered.
    pub fn len(&self) -> usize {
        self.per_index.len()
    }

    /// `true` iff the table covers no indices.
    pub fn is_empty(&self) -> bool {
        self.per_index.is_empty()
    }

    /// Number of lanes per batch — [`SimWord::LANES`] of the word type.
    pub fn lanes(&self) -> usize {
        W::LANES
    }

    /// Number of [`SimWord::LANES`]-lane batches covering the table
    /// (the granularity at which the sharded parallel sweep splits
    /// work).
    pub fn batches(&self) -> usize {
        self.live.len()
    }

    /// Width of the input port the table was transposed for.
    pub fn in_bits(&self) -> usize {
        self.in_bits
    }

    /// Width of the output port the table was transposed for.
    pub fn out_bits(&self) -> usize {
        self.out_bits
    }
}

/// Exhaustive differential sweep, 64 indices per pass: drives `input`
/// with `0, 1, …, expected.len() - 1` through a [`BatchSimulator`] and
/// compares `output` lane-wise against `expected`. The `u64`
/// instantiation of [`exhaustive_check_batched_wide`].
///
/// Returns the first mismatch in index order, if any. A trailing
/// partial batch leaves its unused lanes at zero and never reads them.
///
/// # Panics
/// Panics if either port is missing, the input port cannot represent
/// every index, or either port exceeds the 64-bit `u64` value domain.
pub fn exhaustive_check_batched(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
) -> Result<(), ExhaustiveMismatch> {
    exhaustive_check_batched_wide::<u64>(netlist, input, output, expected)
}

/// Width-generic exhaustive differential sweep: [`SimWord::LANES`]
/// indices settle per tape pass (`u64` = 64, [`W256`] = 256, [`W512`] =
/// 512), executed on the opcode-fused tape
/// ([`SimProgram::compile_fused`]). Fusion never elides output ports,
/// so the verdict and the first-mismatch witness are byte-identical to
/// the canonical 64-lane sweep at every width.
///
/// # Panics
/// Same conditions as [`exhaustive_check_batched`].
pub fn exhaustive_check_batched_wide<W: SimWord>(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
) -> Result<(), ExhaustiveMismatch> {
    let in_w = port_width_checked(netlist, input, output, expected.len());
    let out_w = netlist.output_port(output).unwrap().nets.len();
    let table = WideExpectation::<W>::new(in_w, out_w, expected);
    let mut sim = BatchSim::from_program(SimProgram::compile_fused_shared(netlist.clone()));
    exhaustive_check_batched_with(&mut sim, input, output, &table)
}

/// Steady-state core of [`exhaustive_check_batched`] and its wide
/// variants: sweeps a pre-transposed [`WideExpectation`] through an
/// existing simulator of the same word type. Per batch this is one
/// `set_input_words`, one word-level `eval`, and `out_bits` XOR/AND
/// comparisons — no per-lane work until a mismatch needs its witness
/// extracted.
///
/// # Panics
/// Panics if the simulator's port widths disagree with the table.
pub fn exhaustive_check_batched_with<W: SimWord>(
    sim: &mut BatchSim<W>,
    input: &str,
    output: &str,
    table: &WideExpectation<W>,
) -> Result<(), ExhaustiveMismatch> {
    check_batch_range(sim, input, output, table, 0..table.batches())
}

/// Range core shared by the sequential and sharded sweeps: checks the
/// batches in `range` (each covering [`SimWord::LANES`] consecutive
/// indices) and reports the first mismatch *within that range* in index
/// order. The sequential sweep passes the full range; the parallel
/// sweep hands each worker a contiguous sub-range, so the per-worker
/// result is the worker's lowest mismatch and the earliest-shard
/// reduction is the global one.
///
/// # Panics
/// Panics if the simulator's port widths disagree with the table.
pub(crate) fn check_batch_range<W: SimWord>(
    sim: &mut BatchSim<W>,
    input: &str,
    output: &str,
    table: &WideExpectation<W>,
    range: std::ops::Range<usize>,
) -> Result<(), ExhaustiveMismatch> {
    let out_nets = sim
        .netlist()
        .output_port(output)
        .unwrap_or_else(|| panic!("no output port named {output:?}"))
        .nets
        .clone();
    assert!(
        out_nets.len() == table.out_bits,
        "output port {output:?} ({} bits) does not match the {}-bit expectation table",
        out_nets.len(),
        table.out_bits
    );
    for batch in range {
        let live = table.live[batch];
        sim.set_input_words(
            input,
            &table.in_words[batch * table.in_bits..][..table.in_bits],
        );
        sim.eval();
        let want = &table.want_words[batch * table.out_bits..][..table.out_bits];
        let mut diff = W::zero();
        for (net, &want_word) in out_nets.iter().zip(want) {
            diff = diff | ((sim.probe(*net) ^ want_word) & live);
        }
        if let Some(lane) = diff.first_lane() {
            // Cold path: pinpoint the lowest mismatching lane and
            // re-extract its output word bit by bit.
            let index = batch * W::LANES + lane;
            let got = out_nets.iter().enumerate().fold(0u64, |acc, (b, net)| {
                acc | ((sim.probe(*net).lane(lane) as u64) << b)
            });
            return Err(ExhaustiveMismatch {
                index: index as u64,
                port: output.to_string(),
                got,
                want: table.per_index[index],
            });
        }
    }
    Ok(())
}

/// Scalar counterpart of [`exhaustive_check_batched`]: one
/// [`Simulator`] walk per index, exactly as the pre-batching oracles
/// did. Kept as the reference implementation (mismatch parity) and the
/// baseline side of the scalar-vs-batched benchmark.
///
/// # Panics
/// Same conditions as [`exhaustive_check_batched`].
pub fn exhaustive_check_scalar(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
) -> Result<(), ExhaustiveMismatch> {
    port_width_checked(netlist, input, output, expected.len());
    let mut sim = Simulator::new(netlist.clone());
    exhaustive_check_scalar_with(&mut sim, input, output, expected)
}

/// Steady-state core of [`exhaustive_check_scalar`]: sweeps the table
/// through an existing scalar simulator, one netlist walk per index.
pub fn exhaustive_check_scalar_with(
    sim: &mut Simulator,
    input: &str,
    output: &str,
    expected: &[u64],
) -> Result<(), ExhaustiveMismatch> {
    for (index, &want) in expected.iter().enumerate() {
        sim.set_input(input, &Ubig::from(index as u64));
        sim.eval();
        let got = sim
            .read_output(output)
            .to_u64()
            .expect("output checked <= 64 bits");
        if got != want {
            return Err(ExhaustiveMismatch {
                index: index as u64,
                port: output.to_string(),
                got,
                want,
            });
        }
    }
    Ok(())
}

/// Ground-truth-by-simulation check of every recorded one-hot bank:
/// sweeps all `2^w` values of the named input port, 64 per pass, and
/// returns the lowest input value under which some bank is *not*
/// exactly one-hot (`None` when all banks hold everywhere).
///
/// The per-lane exactly-one predicate is computed word-parallel: for a
/// bank with line words `w`, the chain `one = (one & !w) | (none & w);
/// none &= !w` leaves bit `l` of `one` set iff lane `l` saw exactly one
/// hot line — the 64-wide analogue of the BDD chain in
/// [`crate::check_one_hot_bank`]. This is the simulation cross-check
/// the lint mutation sweep uses to validate BDD verdicts.
///
/// # Panics
/// Panics if the port is missing or 64+ bits wide (the sweep would not
/// terminate in this universe anyway).
pub fn find_one_hot_violation_batched(netlist: &Netlist, input: &str) -> Option<u64> {
    let banks = netlist.one_hot_banks().to_vec();
    if banks.is_empty() {
        return None;
    }
    let total = one_hot_sweep_total(netlist, input);
    let mut sim = BatchSimulator::new(netlist.clone());
    scan_one_hot_range(&mut sim, &banks, input, 0, total)
}

/// Validates the swept input port and returns the sweep bound `2^w`.
///
/// # Panics
/// Panics if the port is missing or 64+ bits wide (the sweep would not
/// terminate in this universe anyway).
pub(crate) fn one_hot_sweep_total(netlist: &Netlist, input: &str) -> u64 {
    let width = netlist
        .input_port(input)
        .unwrap_or_else(|| panic!("no input port named {input:?}"))
        .nets
        .len();
    assert!(
        width < 64,
        "input port {input:?} too wide to sweep ({width} bits)"
    );
    1u64 << width
}

/// Range core shared by the sequential and sharded one-hot sweeps:
/// scans input values `[start, end)` 64 per pass and returns the lowest
/// violating value *within that range*. The trailing pass of a range
/// that is not a multiple of [`LANES`] masks its unused lanes, so
/// shards of any alignment compose without phantom witnesses.
pub(crate) fn scan_one_hot_range(
    sim: &mut BatchSimulator,
    banks: &[Vec<hwperm_logic::NetId>],
    input: &str,
    start: u64,
    end: u64,
) -> Option<u64> {
    let mut lanes = [0u64; LANES];
    let mut base = start;
    while base < end {
        let count = ((end - base) as usize).min(LANES);
        for (lane, slot) in lanes[..count].iter_mut().enumerate() {
            *slot = base + lane as u64;
        }
        sim.set_input_lanes_u64(input, &lanes[..count]);
        sim.eval();
        let live = if count == LANES {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let mut violated = 0u64;
        for bank in banks {
            let mut one = 0u64;
            let mut none = u64::MAX;
            for &net in bank {
                let w = sim.probe(net);
                one = (one & !w) | (none & w);
                none &= !w;
            }
            violated |= !one & live;
        }
        if violated != 0 {
            return Some(base + violated.trailing_zeros() as u64);
        }
        base += count as u64;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::{Builder, Gate};

    /// A 3-bit identity "converter": y = x, expectation table 0..8.
    fn passthrough() -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", 3);
        b.output_bus("y", &x);
        b.finish()
    }

    #[test]
    fn clean_sweep_passes_both_paths() {
        let nl = passthrough();
        let expected: Vec<u64> = (0..8).collect();
        assert_eq!(exhaustive_check_batched(&nl, "x", "y", &expected), Ok(()));
        assert_eq!(exhaustive_check_scalar(&nl, "x", "y", &expected), Ok(()));
    }

    #[test]
    fn first_mismatch_agrees_between_paths() {
        let nl = passthrough();
        // Corrupt expectations at two indices; both sweeps must report
        // the *lower* one with identical got/want.
        let mut expected: Vec<u64> = (0..8).collect();
        expected[5] = 0;
        expected[6] = 0;
        let batched = exhaustive_check_batched(&nl, "x", "y", &expected).unwrap_err();
        let scalar = exhaustive_check_scalar(&nl, "x", "y", &expected).unwrap_err();
        assert_eq!(batched, scalar);
        assert_eq!(batched.index, 5);
        assert_eq!(batched.got, 5);
        assert_eq!(batched.want, 0);
        assert_eq!(batched.port, "y");
    }

    #[test]
    fn partial_final_batch_checked() {
        // 100 indices: one full batch plus a 36-lane remainder whose
        // unused lanes must not produce phantom mismatches.
        let mut b = Builder::new();
        let x = b.input_bus("x", 7);
        b.output_bus("y", &x);
        let nl = b.finish();
        let expected: Vec<u64> = (0..100).collect();
        assert_eq!(exhaustive_check_batched(&nl, "x", "y", &expected), Ok(()));
        let mut bad = expected;
        bad[99] = 42; // last lane of the partial batch
        let err = exhaustive_check_batched(&nl, "x", "y", &bad).unwrap_err();
        assert_eq!(err.index, 99);
    }

    #[test]
    fn mismatch_display_names_port_and_index() {
        let m = ExhaustiveMismatch {
            index: 7,
            port: "perm".into(),
            got: 0x1b,
            want: 0x1e,
        };
        assert_eq!(
            m.to_string(),
            "index 7: output \"perm\" = 0x1b, expected 0x1e"
        );
    }

    #[test]
    fn wide_sweeps_agree_with_the_u64_sweep() {
        use hwperm_logic::{W256, W512};
        // 100 indices: a partial W256 batch and a partial W512 batch.
        let mut b = Builder::new();
        let x = b.input_bus("x", 7);
        b.output_bus("y", &x);
        let nl = b.finish();
        let clean: Vec<u64> = (0..100).collect();
        assert_eq!(
            exhaustive_check_batched_wide::<W256>(&nl, "x", "y", &clean),
            Ok(())
        );
        assert_eq!(
            exhaustive_check_batched_wide::<W512>(&nl, "x", "y", &clean),
            Ok(())
        );
        // Corrupt two indices: every width must report the same (lower)
        // witness as the canonical 64-lane sweep — index, port, got,
        // want all byte-identical.
        let mut bad = clean;
        bad[67] = 3; // past lane 64: a W256/W512 lane no u64 batch holds
        bad[99] = 1;
        let canonical = exhaustive_check_batched(&nl, "x", "y", &bad).unwrap_err();
        assert_eq!(canonical.index, 67);
        let w256 = exhaustive_check_batched_wide::<W256>(&nl, "x", "y", &bad).unwrap_err();
        let w512 = exhaustive_check_batched_wide::<W512>(&nl, "x", "y", &bad).unwrap_err();
        assert_eq!(w256, canonical);
        assert_eq!(w512, canonical);
    }

    #[test]
    fn wide_tables_transpose_like_the_u64_table() {
        use hwperm_logic::W256;
        let expected: Vec<u64> = (0..100).map(|i| i * 3 % 128).collect();
        let narrow = BatchedExpectation::new(7, 7, &expected);
        let wide = WideExpectation::<W256>::new(7, 7, &expected);
        assert_eq!(narrow.len(), wide.len());
        assert_eq!(narrow.batches(), 2);
        assert_eq!(wide.batches(), 1);
        assert_eq!(narrow.lanes(), 64);
        assert_eq!(wide.lanes(), 256);
        assert_eq!(narrow.in_bits(), wide.in_bits());
        assert_eq!(narrow.out_bits(), wide.out_bits());
    }

    #[test]
    #[should_panic(expected = "do not fit input port")]
    fn oversized_table_rejected() {
        let nl = passthrough();
        let expected: Vec<u64> = (0..9).collect(); // 9 > 2^3
        let _ = exhaustive_check_batched(&nl, "x", "y", &expected);
    }

    /// Decoder bank: exactly one-hot for every select value.
    #[test]
    fn healthy_decoder_bank_has_no_violation() {
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 4);
        let lines = b.decoder(&sel, 16);
        b.record_one_hot_bank(&lines);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        assert_eq!(find_one_hot_violation_batched(&nl, "sel"), None);
    }

    #[test]
    fn truncated_decoder_bank_reports_lowest_witness() {
        // 13 of 16 lines: sel in {13, 14, 15} drives zero of them, and
        // the sweep must name 13 — the lowest violating input.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 4);
        let lines = b.decoder(&sel, 13);
        b.record_one_hot_bank(&lines);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        assert_eq!(find_one_hot_violation_batched(&nl, "sel"), Some(13));
    }

    #[test]
    fn stuck_line_violation_found_in_partial_batch() {
        // A 2-bit select (4 values — a single partial batch of 4 lanes)
        // with one line stuck high: two-hot whenever another line fires.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let lines = b.decoder(&sel, 4);
        b.record_one_hot_bank(&lines);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        let stuck = nl.with_gate_replaced(lines[3].index(), Gate::Const(true));
        assert_eq!(find_one_hot_violation_batched(&stuck, "sel"), Some(0));
    }
}
