//! Bounded one-hot proofs over combinational cones.
//!
//! The converter's correctness hinges on every MUX select bank being
//! exactly one-hot (Fig. 1 of the paper: each selection stage routes
//! one remaining element through a one-hot MUX). This module proves
//! that property for a recorded bank without compiling the whole
//! netlist: only the *cone* feeding the bank is compiled, cut at
//! register boundaries (DFF outputs become free variables — sound for
//! proofs, since holding over all register states implies holding over
//! the reachable ones).
//!
//! Two tiers:
//!
//! 1. **Structural**: the bank matches the thermometer decomposition
//!    the generator emits (`bank[0] = ¬t₀`, `bank[d] = t_{d-1} ∧ ¬t_d`,
//!    `bank[r-1] = t_{r-2}`), which is exactly one-hot iff the
//!    thermometer is monotone (`t_d ⇒ t_{d-1}`). Each implication is a
//!    small per-pair BDD query instead of one query over the full bank.
//! 2. **Full BDD**: build the exactly-one predicate over the bank's
//!    cone and test it for tautology.
//!
//! Both tiers respect a node budget; blowing it yields an explicit
//! [`OneHotStatus::BudgetExceeded`] rather than an unbounded compile.

use hwperm_bdd::{Manager, NodeId};
use hwperm_logic::{Gate, NetId, Netlist};

/// Default cap on live BDD nodes for a one-hot query. Comparator and
/// adder cones are linear-sized in LSB-first variable order; the
/// largest real cones (the sorting network's priority banks, whose
/// support spans every data input) peak near 2^21 nodes, so this
/// leaves headroom while still bounding adversarial inputs.
pub const DEFAULT_NODE_BUDGET: usize = 1 << 22;

/// Outcome of [`check_one_hot_bank`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OneHotStatus {
    /// Proven one-hot via the thermometer decomposition plus per-pair
    /// monotonicity queries.
    ProvedStructural,
    /// Proven one-hot by a full exactly-one BDD query over the cone.
    ProvedBdd,
    /// Not one-hot: some assignment of the cone's free nets drives a
    /// number of bank lines different from one.
    Refuted {
        /// `(net index, value)` pairs of one refuting assignment over
        /// the cone's free nets (unlisted nets may take any value).
        assignment: Vec<(usize, bool)>,
    },
    /// The BDD grew past the node budget before a verdict was reached.
    BudgetExceeded {
        /// Live node count when the query was abandoned.
        nodes: usize,
    },
    /// The cone is not a well-formed combinational region (dangling or
    /// forward references), so no query was attempted.
    ConeInvalid(String),
}

/// Result of a bounded one-hot proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotReport {
    /// The verdict.
    pub status: OneHotStatus,
    /// Free variables (Input and DFF nets) feeding the bank.
    pub cone_inputs: usize,
    /// Combinational gates in the bank's cone.
    pub cone_gates: usize,
}

impl OneHotReport {
    /// `true` iff the bank was proven one-hot (either tier).
    pub fn proved(&self) -> bool {
        matches!(
            self.status,
            OneHotStatus::ProvedStructural | OneHotStatus::ProvedBdd
        )
    }
}

/// The combinational cone feeding a set of root nets, cut at `Input`,
/// `Const` and `Dff` gates.
struct Cone {
    /// All cone nets, ascending (a valid topological order).
    nets: Vec<usize>,
    /// The cut: `Input`/`Dff` nets, ascending. Their position in this
    /// list is their BDD variable level, so LSB-first creation order
    /// becomes LSB-first variable order (linear comparator BDDs).
    free: Vec<usize>,
}

fn collect_cone(netlist: &Netlist, roots: &[NetId]) -> Result<Cone, String> {
    let gates = netlist.gates();
    let mut in_cone = vec![false; gates.len()];
    let mut stack: Vec<usize> = Vec::new();
    for net in roots {
        if net.index() >= gates.len() {
            return Err(format!("bank references out-of-range net {}", net.index()));
        }
        stack.push(net.index());
    }
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut in_cone[i], true) {
            continue;
        }
        match gates[i] {
            Gate::Input | Gate::Const(_) | Gate::Dff { .. } => {}
            ref g => {
                for f in g.fanin() {
                    if f.index() >= gates.len() {
                        return Err(format!(
                            "gate {i} references out-of-range net {}",
                            f.index()
                        ));
                    }
                    if f.index() >= i {
                        return Err(format!(
                            "combinational gate {i} references non-earlier net {} (cycle)",
                            f.index()
                        ));
                    }
                    stack.push(f.index());
                }
            }
        }
    }
    let nets: Vec<usize> = (0..gates.len()).filter(|&i| in_cone[i]).collect();
    let free: Vec<usize> = nets
        .iter()
        .copied()
        .filter(|&i| matches!(gates[i], Gate::Input | Gate::Dff { .. }))
        .collect();
    Ok(Cone { nets, free })
}

/// Compiles the cone bottom-up; `Err(nodes)` if the budget is blown.
fn compile_cone(
    netlist: &Netlist,
    cone: &Cone,
    manager: &mut Manager,
    budget: usize,
) -> Result<Vec<NodeId>, usize> {
    let gates = netlist.gates();
    let mut node_of = vec![NodeId::FALSE; gates.len()];
    for (level, &i) in cone.free.iter().enumerate() {
        node_of[i] = manager.var(level);
    }
    for &i in &cone.nets {
        node_of[i] = match gates[i] {
            Gate::Input | Gate::Dff { .. } => node_of[i],
            Gate::Const(v) => {
                if v {
                    NodeId::TRUE
                } else {
                    NodeId::FALSE
                }
            }
            Gate::Not(a) => manager.not(node_of[a.index()]),
            Gate::And(a, b) => manager.and(node_of[a.index()], node_of[b.index()]),
            Gate::Or(a, b) => manager.or(node_of[a.index()], node_of[b.index()]),
            Gate::Xor(a, b) => manager.xor(node_of[a.index()], node_of[b.index()]),
            Gate::Mux { sel, a, b } => {
                manager.ite(node_of[sel.index()], node_of[b.index()], node_of[a.index()])
            }
        };
        if manager.total_nodes() > budget {
            return Err(manager.total_nodes());
        }
    }
    Ok(node_of)
}

/// One satisfying assignment of a non-`FALSE` BDD, reported per
/// variable level on the path (off-path variables are free).
fn satisfying_assignment(manager: &Manager, root: NodeId) -> Vec<(usize, bool)> {
    debug_assert_ne!(root, NodeId::FALSE);
    let mut path = Vec::new();
    let mut cur = root;
    while cur != NodeId::TRUE && cur != NodeId::FALSE {
        let (level, lo, hi) = manager.node_triple(cur);
        // In a reduced BDD every non-FALSE node is satisfiable, so any
        // non-FALSE child leads to TRUE.
        if hi != NodeId::FALSE {
            path.push((level as usize, true));
            cur = hi;
        } else {
            path.push((level as usize, false));
            cur = lo;
        }
    }
    path
}

/// Matches the generator's thermometer decomposition of `bank` and
/// returns the thermometer lines `t_0 .. t_{r-2}` if it fits:
/// `bank[0] = ¬t₀`, `bank[d] = t_{d-1} ∧ ¬t_d`, `bank[r-1] = t_{r-2}`.
fn thermometer_decomposition(netlist: &Netlist, bank: &[NetId]) -> Option<Vec<NetId>> {
    let gates = netlist.gates();
    let gate = |n: NetId| gates.get(n.index()).copied();
    let r = bank.len();
    if r < 2 {
        return None;
    }
    let Some(Gate::Not(t0)) = gate(bank[0]) else {
        return None;
    };
    let mut thermo = vec![t0];
    for d in 1..r - 1 {
        let Some(Gate::And(x, y)) = gate(bank[d]) else {
            return None;
        };
        let prev = thermo[d - 1];
        // One operand is t_{d-1}; the other inverts the next line.
        let inverted = if x == prev {
            y
        } else if y == prev {
            x
        } else {
            return None;
        };
        let Some(Gate::Not(t_d)) = gate(inverted) else {
            return None;
        };
        thermo.push(t_d);
    }
    (bank[r - 1] == thermo[r - 2]).then_some(thermo)
}

/// Attempts to prove that `bank` is exactly one-hot for every
/// assignment of its cone's free nets (primary inputs and register
/// outputs), spending at most `node_budget` BDD nodes.
///
/// Structural tier first (thermometer pattern + per-pair monotonicity
/// queries), full exactly-one query otherwise. See the module docs.
pub fn check_one_hot_bank(netlist: &Netlist, bank: &[NetId], node_budget: usize) -> OneHotReport {
    let cone = match collect_cone(netlist, bank) {
        Ok(c) => c,
        Err(e) => {
            return OneHotReport {
                status: OneHotStatus::ConeInvalid(e),
                cone_inputs: 0,
                cone_gates: 0,
            }
        }
    };
    let cone_inputs = cone.free.len();
    let cone_gates = cone
        .nets
        .iter()
        .filter(|&&i| netlist.gates()[i].is_combinational())
        .count();
    let report = |status| OneHotReport {
        status,
        cone_inputs,
        cone_gates,
    };

    // Tier 1: thermometer decomposition. Exactly-one reduces to the
    // monotonicity chain t_d ⇒ t_{d-1}, each a pair-cone query.
    if let Some(thermo) = thermometer_decomposition(netlist, bank) {
        let mut structural = true;
        for d in 1..thermo.len() {
            let pair = [thermo[d - 1], thermo[d]];
            let Ok(pair_cone) = collect_cone(netlist, &pair) else {
                structural = false;
                break;
            };
            let mut manager = Manager::new(pair_cone.free.len());
            match compile_cone(netlist, &pair_cone, &mut manager, node_budget) {
                Err(_) => {
                    structural = false; // fall through to the full query
                    break;
                }
                Ok(node_of) => {
                    let prev = node_of[pair[0].index()];
                    let cur = node_of[pair[1].index()];
                    let not_prev = manager.not(prev);
                    if manager.and(cur, not_prev) != NodeId::FALSE {
                        structural = false; // not monotone; let the full
                        break; // query produce the witness
                    }
                }
            }
        }
        if structural {
            return report(OneHotStatus::ProvedStructural);
        }
    }

    // Tier 2: full exactly-one query over the bank cone.
    let mut manager = Manager::new(cone_inputs);
    let node_of = match compile_cone(netlist, &cone, &mut manager, node_budget) {
        Ok(n) => n,
        Err(nodes) => return report(OneHotStatus::BudgetExceeded { nodes }),
    };
    // Chain: `none` = no line hot so far, `one` = exactly one hot.
    let mut none = NodeId::TRUE;
    let mut one = NodeId::FALSE;
    for net in bank {
        let line = node_of[net.index()];
        let not_line = manager.not(line);
        let still_one = manager.and(one, not_line);
        let became_one = manager.and(none, line);
        one = manager.or(still_one, became_one);
        none = manager.and(none, not_line);
        if manager.total_nodes() > node_budget {
            return report(OneHotStatus::BudgetExceeded {
                nodes: manager.total_nodes(),
            });
        }
    }
    if one == NodeId::TRUE {
        return report(OneHotStatus::ProvedBdd);
    }
    let violation = manager.not(one);
    let assignment = satisfying_assignment(&manager, violation)
        .into_iter()
        .map(|(level, value)| (cone.free[level], value))
        .collect();
    report(OneHotStatus::Refuted { assignment })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Builder;

    fn report(netlist: &Netlist, bank: &[NetId]) -> OneHotReport {
        check_one_hot_bank(netlist, bank, DEFAULT_NODE_BUDGET)
    }

    #[test]
    fn decoder_bank_proved() {
        // eq_const lines over a 2-bit select: always exactly one-hot.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let lines = b.decoder(&sel, 4);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        // `finish()` compacts net ids; re-fetch the bank from the port.
        let lines = nl.output_port("hot").unwrap().nets.clone();
        let r = report(&nl, &lines);
        assert!(r.proved(), "{:?}", r.status);
        assert_eq!(r.cone_inputs, 2);
    }

    #[test]
    fn truncated_decoder_refuted() {
        // Only 3 of 4 lines: sel == 3 drives zero of them.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let lines = b.decoder(&sel, 3);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        match report(&nl, &lines).status {
            OneHotStatus::Refuted { assignment } => {
                // The witness must set both select bits high.
                assert!(assignment.iter().all(|&(_, v)| v));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn thermometer_bank_proved_structurally() {
        // ge_const thermometer over a 4-bit index, as the converter
        // builds it: monotone, so structural tier must fire.
        let mut b = Builder::new();
        let index = b.input_bus("index", 4);
        let thermo: Vec<_> = (1..4u64)
            .map(|i| b.ge_const(&index, &hwperm_bignum::Ubig::from(4 * i)))
            .collect();
        let mut bank = vec![b.not(thermo[0])];
        for d in 1..3 {
            let inv = b.not(thermo[d]);
            bank.push(b.and(thermo[d - 1], inv));
        }
        bank.push(thermo[2]);
        b.output_bus("hot", &bank);
        let nl = b.finish();
        let bank = nl.output_port("hot").unwrap().nets.clone();
        assert_eq!(report(&nl, &bank).status, OneHotStatus::ProvedStructural);
    }

    #[test]
    fn two_hot_bank_refuted() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let inv = b.not(x[0]);
        // [x, x, !x]: two lines hot when x = 1.
        let bank = vec![x[0], x[0], inv];
        b.output_bus("hot", &bank);
        let nl = b.finish();
        let bank = nl.output_port("hot").unwrap().nets.clone();
        assert!(matches!(
            report(&nl, &bank).status,
            OneHotStatus::Refuted { .. }
        ));
    }

    #[test]
    fn register_cut_makes_sequential_banks_checkable() {
        // A decoder fed by registered state: the DFF outputs become free
        // variables, so the proof covers every register state.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let q = b.register_bus(&x, false);
        let lines = b.decoder(&q, 4);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        let r = report(&nl, &lines);
        assert!(r.proved(), "{:?}", r.status);
        assert_eq!(r.cone_inputs, 2); // the two DFFs, not the inputs
    }

    #[test]
    fn budget_exhaustion_reported() {
        // XOR ladder with a tiny budget.
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, _) = b.add(&x, &y);
        let lines = b.decoder(&s[..3], 8);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        assert!(matches!(
            check_one_hot_bank(&nl, &lines, 4).status,
            OneHotStatus::BudgetExceeded { .. }
        ));
    }

    #[test]
    fn invalid_cone_reported() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let g = b.and(x[0], x[1]);
        b.output_bus("y", &[g]);
        let nl = b.finish();
        // Corrupt the And into a self-reference.
        let broken = nl.with_gate_replaced(g.index(), Gate::And(g, g));
        assert!(matches!(
            report(&broken, &[g]).status,
            OneHotStatus::ConeInvalid(_)
        ));
    }
}
