//! Bounded one-hot proofs over combinational cones.
//!
//! The converter's correctness hinges on every MUX select bank being
//! exactly one-hot (Fig. 1 of the paper: each selection stage routes
//! one remaining element through a one-hot MUX). This module proves
//! that property for a recorded bank without compiling the whole
//! netlist: only the *cone* feeding the bank is compiled, cut at
//! register boundaries (DFF outputs become free variables — sound for
//! proofs, since holding over all register states implies holding over
//! the reachable ones).
//!
//! Three tiers:
//!
//! 1. **Structural**: the bank matches the thermometer decomposition
//!    the generator emits (`bank[0] = ¬t₀`, `bank[d] = t_{d-1} ∧ ¬t_d`,
//!    `bank[r-1] = t_{r-2}`), which is exactly one-hot iff the
//!    thermometer is monotone (`t_d ⇒ t_{d-1}`). Each implication is a
//!    small per-pair BDD query instead of one query over the full bank.
//! 2. **Full BDD**: build the exactly-one predicate over the bank's
//!    cone and test it for tautology.
//! 3. **SAT escalation**: when the BDD blows its node budget, the cone
//!    is Tseitin-encoded ([`hwperm_sat::Cnf`]) and a CDCL search looks
//!    for an exactly-one violation — UNSAT is a proof
//!    ([`OneHotStatus::ProvedSat`]). SAT cost tracks circuit structure,
//!    not BDD width, so wide-support cones (the sorting network's
//!    priority banks) that diverge as BDDs still close as proofs.
//!
//! Every tier respects a budget; exhausting all of them yields an
//! explicit [`OneHotStatus::Skipped`] rather than an unbounded
//! compile — callers can always distinguish *proved* from *gave up*.
//!
//! [`check_one_hot_bank_sat`] additionally accepts an input-range
//! constraint (`port < bound`), which proves *range don't-care safety*:
//! a bank refutable only by out-of-range inputs (e.g. converter indices
//! `≥ n!`) is safe in any system that respects the range contract.

use hwperm_bdd::{Manager, NodeId};
use hwperm_logic::{Gate, NetId, Netlist};
use hwperm_sat::{lit_value, Cnf, Lit, SatResult};

/// Default cap on live BDD nodes for a one-hot query. Comparator and
/// adder cones are linear-sized in LSB-first variable order; the
/// largest real cones (the sorting network's priority banks, whose
/// support spans every data input) peak near 2^21 nodes, so this
/// leaves headroom while still bounding adversarial inputs.
pub const DEFAULT_NODE_BUDGET: usize = 1 << 22;

/// Default cap on CDCL conflicts for one SAT escalation query. The
/// real generator banks close in well under a thousand conflicts; a
/// million bounds adversarial cones to fractions of a second while
/// leaving three orders of magnitude of headroom.
pub const DEFAULT_SAT_CONFLICT_BUDGET: u64 = 1 << 20;

/// Outcome of [`check_one_hot_bank`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OneHotStatus {
    /// Proven one-hot via the thermometer decomposition plus per-pair
    /// monotonicity queries.
    ProvedStructural,
    /// Proven one-hot by a full exactly-one BDD query over the cone.
    ProvedBdd,
    /// Proven one-hot by an UNSAT result over the Tseitin-encoded cone
    /// (the SAT escalation tier, or a direct [`check_one_hot_bank_sat`]
    /// query).
    ProvedSat,
    /// Not one-hot: some assignment of the cone's free nets drives a
    /// number of bank lines different from one.
    Refuted {
        /// `(net index, value)` pairs of one refuting assignment over
        /// the cone's free nets (unlisted nets may take any value).
        assignment: Vec<(usize, bool)>,
    },
    /// The BDD grew past the node budget before a verdict was reached
    /// (no SAT escalation was attempted).
    BudgetExceeded {
        /// Live node count when the query was abandoned.
        nodes: usize,
    },
    /// Every attempted tier exhausted its budget: the property is
    /// unknown and the check was explicitly skipped.
    Skipped {
        /// Live BDD node count when that tier was abandoned (`0` if the
        /// BDD tier was never attempted, e.g. a direct SAT query).
        bdd_nodes: usize,
        /// The conflict budget the SAT search exhausted.
        sat_conflicts: u64,
    },
    /// The cone is not a well-formed combinational region (dangling or
    /// forward references), so no query was attempted.
    ConeInvalid(String),
}

/// Result of a bounded one-hot proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotReport {
    /// The verdict.
    pub status: OneHotStatus,
    /// Free variables (Input and DFF nets) feeding the bank.
    pub cone_inputs: usize,
    /// Combinational gates in the bank's cone.
    pub cone_gates: usize,
}

impl OneHotReport {
    /// `true` iff the bank was proven one-hot (either tier).
    pub fn proved(&self) -> bool {
        matches!(
            self.status,
            OneHotStatus::ProvedStructural | OneHotStatus::ProvedBdd | OneHotStatus::ProvedSat
        )
    }
}

/// The combinational cone feeding a set of root nets, cut at `Input`,
/// `Const` and `Dff` gates.
struct Cone {
    /// All cone nets, ascending (a valid topological order).
    nets: Vec<usize>,
    /// The cut: `Input`/`Dff` nets, ascending. Their position in this
    /// list is their BDD variable level, so LSB-first creation order
    /// becomes LSB-first variable order (linear comparator BDDs).
    free: Vec<usize>,
}

fn collect_cone(netlist: &Netlist, roots: &[NetId]) -> Result<Cone, String> {
    let gates = netlist.gates();
    let mut in_cone = vec![false; gates.len()];
    let mut stack: Vec<usize> = Vec::new();
    for net in roots {
        if net.index() >= gates.len() {
            return Err(format!("bank references out-of-range net {}", net.index()));
        }
        stack.push(net.index());
    }
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut in_cone[i], true) {
            continue;
        }
        match gates[i] {
            Gate::Input | Gate::Const(_) | Gate::Dff { .. } => {}
            ref g => {
                for f in g.fanin() {
                    if f.index() >= gates.len() {
                        return Err(format!(
                            "gate {i} references out-of-range net {}",
                            f.index()
                        ));
                    }
                    if f.index() >= i {
                        return Err(format!(
                            "combinational gate {i} references non-earlier net {} (cycle)",
                            f.index()
                        ));
                    }
                    stack.push(f.index());
                }
            }
        }
    }
    let nets: Vec<usize> = (0..gates.len()).filter(|&i| in_cone[i]).collect();
    let free: Vec<usize> = nets
        .iter()
        .copied()
        .filter(|&i| matches!(gates[i], Gate::Input | Gate::Dff { .. }))
        .collect();
    Ok(Cone { nets, free })
}

/// Compiles the cone bottom-up; `Err(nodes)` if the budget is blown.
fn compile_cone(
    netlist: &Netlist,
    cone: &Cone,
    manager: &mut Manager,
    budget: usize,
) -> Result<Vec<NodeId>, usize> {
    let gates = netlist.gates();
    let mut node_of = vec![NodeId::FALSE; gates.len()];
    for (level, &i) in cone.free.iter().enumerate() {
        node_of[i] = manager.var(level);
    }
    for &i in &cone.nets {
        node_of[i] = match gates[i] {
            Gate::Input | Gate::Dff { .. } => node_of[i],
            Gate::Const(v) => {
                if v {
                    NodeId::TRUE
                } else {
                    NodeId::FALSE
                }
            }
            Gate::Not(a) => manager.not(node_of[a.index()]),
            Gate::And(a, b) => manager.and(node_of[a.index()], node_of[b.index()]),
            Gate::Or(a, b) => manager.or(node_of[a.index()], node_of[b.index()]),
            Gate::Xor(a, b) => manager.xor(node_of[a.index()], node_of[b.index()]),
            Gate::Mux { sel, a, b } => {
                manager.ite(node_of[sel.index()], node_of[b.index()], node_of[a.index()])
            }
        };
        if manager.total_nodes() > budget {
            return Err(manager.total_nodes());
        }
    }
    Ok(node_of)
}

/// One satisfying assignment of a non-`FALSE` BDD, reported per
/// variable level on the path (off-path variables are free).
fn satisfying_assignment(manager: &Manager, root: NodeId) -> Vec<(usize, bool)> {
    debug_assert_ne!(root, NodeId::FALSE);
    let mut path = Vec::new();
    let mut cur = root;
    while cur != NodeId::TRUE && cur != NodeId::FALSE {
        let (level, lo, hi) = manager.node_triple(cur);
        // In a reduced BDD every non-FALSE node is satisfiable, so any
        // non-FALSE child leads to TRUE.
        if hi != NodeId::FALSE {
            path.push((level as usize, true));
            cur = hi;
        } else {
            path.push((level as usize, false));
            cur = lo;
        }
    }
    path
}

/// Matches the generator's thermometer decomposition of `bank` and
/// returns the thermometer lines `t_0 .. t_{r-2}` if it fits:
/// `bank[0] = ¬t₀`, `bank[d] = t_{d-1} ∧ ¬t_d`, `bank[r-1] = t_{r-2}`.
fn thermometer_decomposition(netlist: &Netlist, bank: &[NetId]) -> Option<Vec<NetId>> {
    let gates = netlist.gates();
    let gate = |n: NetId| gates.get(n.index()).copied();
    let r = bank.len();
    if r < 2 {
        return None;
    }
    let Some(Gate::Not(t0)) = gate(bank[0]) else {
        return None;
    };
    let mut thermo = vec![t0];
    for d in 1..r - 1 {
        let Some(Gate::And(x, y)) = gate(bank[d]) else {
            return None;
        };
        let prev = thermo[d - 1];
        // One operand is t_{d-1}; the other inverts the next line.
        let inverted = if x == prev {
            y
        } else if y == prev {
            x
        } else {
            return None;
        };
        let Some(Gate::Not(t_d)) = gate(inverted) else {
            return None;
        };
        thermo.push(t_d);
    }
    (bank[r - 1] == thermo[r - 2]).then_some(thermo)
}

/// Attempts to prove that `bank` is exactly one-hot for every
/// assignment of its cone's free nets (primary inputs and register
/// outputs), spending at most `node_budget` BDD nodes.
///
/// Structural tier first (thermometer pattern + per-pair monotonicity
/// queries), full exactly-one query otherwise. See the module docs.
pub fn check_one_hot_bank(netlist: &Netlist, bank: &[NetId], node_budget: usize) -> OneHotReport {
    let cone = match collect_cone(netlist, bank) {
        Ok(c) => c,
        Err(e) => {
            return OneHotReport {
                status: OneHotStatus::ConeInvalid(e),
                cone_inputs: 0,
                cone_gates: 0,
            }
        }
    };
    let cone_inputs = cone.free.len();
    let cone_gates = cone
        .nets
        .iter()
        .filter(|&&i| netlist.gates()[i].is_combinational())
        .count();
    let report = |status| OneHotReport {
        status,
        cone_inputs,
        cone_gates,
    };

    // Tier 1: thermometer decomposition. Exactly-one reduces to the
    // monotonicity chain t_d ⇒ t_{d-1}, each a pair-cone query.
    if let Some(thermo) = thermometer_decomposition(netlist, bank) {
        let mut structural = true;
        for d in 1..thermo.len() {
            let pair = [thermo[d - 1], thermo[d]];
            let Ok(pair_cone) = collect_cone(netlist, &pair) else {
                structural = false;
                break;
            };
            let mut manager = Manager::new(pair_cone.free.len());
            match compile_cone(netlist, &pair_cone, &mut manager, node_budget) {
                Err(_) => {
                    structural = false; // fall through to the full query
                    break;
                }
                Ok(node_of) => {
                    let prev = node_of[pair[0].index()];
                    let cur = node_of[pair[1].index()];
                    let not_prev = manager.not(prev);
                    if manager.and(cur, not_prev) != NodeId::FALSE {
                        structural = false; // not monotone; let the full
                        break; // query produce the witness
                    }
                }
            }
        }
        if structural {
            return report(OneHotStatus::ProvedStructural);
        }
    }

    // Tier 2: full exactly-one query over the bank cone.
    let mut manager = Manager::new(cone_inputs);
    let node_of = match compile_cone(netlist, &cone, &mut manager, node_budget) {
        Ok(n) => n,
        Err(nodes) => return report(OneHotStatus::BudgetExceeded { nodes }),
    };
    // Chain: `none` = no line hot so far, `one` = exactly one hot.
    let mut none = NodeId::TRUE;
    let mut one = NodeId::FALSE;
    for net in bank {
        let line = node_of[net.index()];
        let not_line = manager.not(line);
        let still_one = manager.and(one, not_line);
        let became_one = manager.and(none, line);
        one = manager.or(still_one, became_one);
        none = manager.and(none, not_line);
        if manager.total_nodes() > node_budget {
            return report(OneHotStatus::BudgetExceeded {
                nodes: manager.total_nodes(),
            });
        }
    }
    if one == NodeId::TRUE {
        return report(OneHotStatus::ProvedBdd);
    }
    let violation = manager.not(one);
    let assignment = satisfying_assignment(&manager, violation)
        .into_iter()
        .map(|(level, value)| (cone.free[level], value))
        .collect();
    report(OneHotStatus::Refuted { assignment })
}

/// Tseitin-encodes the cone into `cnf`, returning a literal per net
/// (free nets become fresh variables, constants fold into the pinned
/// constant, `Not` is a free polarity flip).
fn encode_cone_cnf(netlist: &Netlist, cone: &Cone, cnf: &mut Cnf) -> Vec<Lit> {
    let gates = netlist.gates();
    let mut lit_of: Vec<Lit> = vec![Lit::positive(0); gates.len()];
    for &i in &cone.free {
        lit_of[i] = cnf.new_var();
    }
    for &i in &cone.nets {
        lit_of[i] = match gates[i] {
            Gate::Input | Gate::Dff { .. } => lit_of[i],
            Gate::Const(v) => cnf.constant(v),
            Gate::Not(a) => !lit_of[a.index()],
            Gate::And(a, b) => cnf.and(lit_of[a.index()], lit_of[b.index()]),
            Gate::Or(a, b) => cnf.or(lit_of[a.index()], lit_of[b.index()]),
            Gate::Xor(a, b) => cnf.xor(lit_of[a.index()], lit_of[b.index()]),
            Gate::Mux { sel, a, b } => {
                cnf.mux(lit_of[sel.index()], lit_of[a.index()], lit_of[b.index()])
            }
        };
    }
    lit_of
}

/// A literal true iff `lines` is *not* exactly one-hot: either no line
/// is hot, or some pair is simultaneously hot. Pairwise encoding —
/// select banks are at most `n ≤ 9` lines wide, and the structural
/// hash dedups repeated pair terms.
fn exactly_one_violation(cnf: &mut Cnf, lines: &[Lit]) -> Lit {
    let negated: Vec<Lit> = lines.iter().map(|&l| !l).collect();
    let none_hot = cnf.and_many(&negated);
    let mut pairs = Vec::new();
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            pairs.push(cnf.and(lines[i], lines[j]));
        }
    }
    let two_hot = cnf.or_many(&pairs);
    cnf.or(none_hot, two_hot)
}

/// Attempts to decide one-hotness of `bank` by SAT search over the
/// Tseitin-encoded cone, spending at most `max_conflicts` CDCL
/// conflicts (`None` = unbounded).
///
/// `range` optionally constrains the query to in-range inputs: given
/// `(port_nets, bound)`, only assignments where the little-endian word
/// over `port_nets` is strictly below `bound` are considered. A
/// refutation then carries an in-range witness; a proof means any
/// violation requires an out-of-range input — the *range don't-care
/// safety* property (converter index ports only carry values below
/// `n!` by contract, so violations confined to `≥ n!` are unreachable).
/// Port bits outside the bank's cone are treated as free variables,
/// which is exact for `Input`-gate port bits (the only well-formed
/// kind).
///
/// Verdicts: [`OneHotStatus::ProvedSat`], [`OneHotStatus::Refuted`]
/// (witness over the cone's free nets plus any off-cone range bits), or
/// [`OneHotStatus::Skipped`] with `bdd_nodes: 0` when the conflict
/// budget runs out.
pub fn check_one_hot_bank_sat(
    netlist: &Netlist,
    bank: &[NetId],
    range: Option<(&[NetId], u64)>,
    max_conflicts: Option<u64>,
) -> OneHotReport {
    let cone = match collect_cone(netlist, bank) {
        Ok(c) => c,
        Err(e) => {
            return OneHotReport {
                status: OneHotStatus::ConeInvalid(e),
                cone_inputs: 0,
                cone_gates: 0,
            }
        }
    };
    let cone_inputs = cone.free.len();
    let cone_gates = cone
        .nets
        .iter()
        .filter(|&&i| netlist.gates()[i].is_combinational())
        .count();
    let report = |status| OneHotReport {
        status,
        cone_inputs,
        cone_gates,
    };

    let mut cnf = Cnf::new();
    let lit_of = encode_cone_cnf(netlist, &cone, &mut cnf);
    // The witness maps net indices to model literals: every cone free
    // net, plus fresh variables for range-port bits the cone ignores.
    let mut witness: Vec<(usize, Lit)> = cone.free.iter().map(|&i| (i, lit_of[i])).collect();
    if let Some((port_nets, bound)) = range {
        let mut bits = Vec::with_capacity(port_nets.len());
        for net in port_nets {
            let i = net.index();
            if i >= netlist.gates().len() {
                return report(OneHotStatus::ConeInvalid(format!(
                    "range port references out-of-range net {i}"
                )));
            }
            let lit = if cone.nets.binary_search(&i).is_ok() {
                lit_of[i]
            } else {
                let fresh = cnf.new_var();
                witness.push((i, fresh));
                fresh
            };
            bits.push(lit);
        }
        let in_range = cnf.less_than_const(&bits, bound);
        cnf.assert_lit(in_range);
    }
    let bank_lits: Vec<Lit> = bank.iter().map(|n| lit_of[n.index()]).collect();
    let violation = exactly_one_violation(&mut cnf, &bank_lits);
    cnf.assert_lit(violation);

    match cnf.solve_budgeted(max_conflicts) {
        (SatResult::Unsat, _) => report(OneHotStatus::ProvedSat),
        (SatResult::Sat(model), _) => {
            let assignment = witness
                .into_iter()
                .map(|(net, lit)| (net, lit_value(&model, lit)))
                .collect();
            report(OneHotStatus::Refuted { assignment })
        }
        (SatResult::Unknown, _) => report(OneHotStatus::Skipped {
            bdd_nodes: 0,
            sat_conflicts: max_conflicts.unwrap_or(u64::MAX),
        }),
    }
}

/// [`check_one_hot_bank`] with SAT escalation: runs the structural and
/// BDD tiers first, and when (only when) the BDD node budget is
/// exhausted, re-attacks the cone with a bounded CDCL search. The
/// result is never a bare [`OneHotStatus::BudgetExceeded`]: either some
/// tier reached a verdict, or every budget ran out and the status is an
/// explicit [`OneHotStatus::Skipped`] carrying both exhausted budgets.
pub fn check_one_hot_bank_escalated(
    netlist: &Netlist,
    bank: &[NetId],
    node_budget: usize,
    sat_conflict_budget: u64,
) -> OneHotReport {
    let bdd = check_one_hot_bank(netlist, bank, node_budget);
    let OneHotStatus::BudgetExceeded { nodes } = bdd.status else {
        return bdd;
    };
    let sat = check_one_hot_bank_sat(netlist, bank, None, Some(sat_conflict_budget));
    match sat.status {
        OneHotStatus::Skipped { .. } => OneHotReport {
            status: OneHotStatus::Skipped {
                bdd_nodes: nodes,
                sat_conflicts: sat_conflict_budget,
            },
            cone_inputs: sat.cone_inputs,
            cone_gates: sat.cone_gates,
        },
        _ => sat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Builder;

    fn report(netlist: &Netlist, bank: &[NetId]) -> OneHotReport {
        check_one_hot_bank(netlist, bank, DEFAULT_NODE_BUDGET)
    }

    #[test]
    fn decoder_bank_proved() {
        // eq_const lines over a 2-bit select: always exactly one-hot.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let lines = b.decoder(&sel, 4);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        // `finish()` compacts net ids; re-fetch the bank from the port.
        let lines = nl.output_port("hot").unwrap().nets.clone();
        let r = report(&nl, &lines);
        assert!(r.proved(), "{:?}", r.status);
        assert_eq!(r.cone_inputs, 2);
    }

    #[test]
    fn truncated_decoder_refuted() {
        // Only 3 of 4 lines: sel == 3 drives zero of them.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let lines = b.decoder(&sel, 3);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        match report(&nl, &lines).status {
            OneHotStatus::Refuted { assignment } => {
                // The witness must set both select bits high.
                assert!(assignment.iter().all(|&(_, v)| v));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn thermometer_bank_proved_structurally() {
        // ge_const thermometer over a 4-bit index, as the converter
        // builds it: monotone, so structural tier must fire.
        let mut b = Builder::new();
        let index = b.input_bus("index", 4);
        let thermo: Vec<_> = (1..4u64)
            .map(|i| b.ge_const(&index, &hwperm_bignum::Ubig::from(4 * i)))
            .collect();
        let mut bank = vec![b.not(thermo[0])];
        for d in 1..3 {
            let inv = b.not(thermo[d]);
            bank.push(b.and(thermo[d - 1], inv));
        }
        bank.push(thermo[2]);
        b.output_bus("hot", &bank);
        let nl = b.finish();
        let bank = nl.output_port("hot").unwrap().nets.clone();
        assert_eq!(report(&nl, &bank).status, OneHotStatus::ProvedStructural);
    }

    #[test]
    fn two_hot_bank_refuted() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let inv = b.not(x[0]);
        // [x, x, !x]: two lines hot when x = 1.
        let bank = vec![x[0], x[0], inv];
        b.output_bus("hot", &bank);
        let nl = b.finish();
        let bank = nl.output_port("hot").unwrap().nets.clone();
        assert!(matches!(
            report(&nl, &bank).status,
            OneHotStatus::Refuted { .. }
        ));
    }

    #[test]
    fn register_cut_makes_sequential_banks_checkable() {
        // A decoder fed by registered state: the DFF outputs become free
        // variables, so the proof covers every register state.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let q = b.register_bus(&x, false);
        let lines = b.decoder(&q, 4);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        let r = report(&nl, &lines);
        assert!(r.proved(), "{:?}", r.status);
        assert_eq!(r.cone_inputs, 2); // the two DFFs, not the inputs
    }

    #[test]
    fn budget_exhaustion_reported() {
        // XOR ladder with a tiny budget.
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, _) = b.add(&x, &y);
        let lines = b.decoder(&s[..3], 8);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        assert!(matches!(
            check_one_hot_bank(&nl, &lines, 4).status,
            OneHotStatus::BudgetExceeded { .. }
        ));
    }

    /// An 8-line decoder fed through an adder: always one-hot, but the
    /// cone is wide enough that a 4-node BDD budget is hopeless.
    fn adder_decoder() -> (Netlist, Vec<NetId>) {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, _) = b.add(&x, &y);
        let lines = b.decoder(&s[..3], 8);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        (nl, lines)
    }

    #[test]
    fn sat_escalation_proves_past_bdd_budget() {
        let (nl, lines) = adder_decoder();
        let r = check_one_hot_bank_escalated(&nl, &lines, 4, DEFAULT_SAT_CONFLICT_BUDGET);
        assert_eq!(r.status, OneHotStatus::ProvedSat);
        assert!(r.proved());
        // The low three sum bits see x[0..3] and y[0..3].
        assert_eq!(r.cone_inputs, 6);
    }

    #[test]
    fn sat_escalation_refutes_broken_bank_past_bdd_budget() {
        // Drop the last decoder line: sum ≡ 7 (mod 8) hits zero lines.
        let (nl, lines) = adder_decoder();
        let r = check_one_hot_bank_escalated(&nl, &lines[..7], 4, DEFAULT_SAT_CONFLICT_BUDGET);
        assert!(
            matches!(r.status, OneHotStatus::Refuted { .. }),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn escalation_with_all_budgets_exhausted_is_explicitly_skipped() {
        let (nl, lines) = adder_decoder();
        let r = check_one_hot_bank_escalated(&nl, &lines, 4, 0);
        match r.status {
            OneHotStatus::Skipped {
                bdd_nodes,
                sat_conflicts,
            } => {
                assert!(bdd_nodes > 4);
                assert_eq!(sat_conflicts, 0);
            }
            other => panic!("expected Skipped, got {other:?}"),
        }
    }

    #[test]
    fn sat_direct_query_matches_bdd_verdicts() {
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let lines = b.decoder(&sel, 4);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        let r = check_one_hot_bank_sat(&nl, &lines, None, None);
        assert_eq!(r.status, OneHotStatus::ProvedSat);
        // Truncated: the SAT witness must agree with the BDD one.
        let r = check_one_hot_bank_sat(&nl, &lines[..3], None, None);
        match r.status {
            OneHotStatus::Refuted { assignment } => {
                assert!(assignment.iter().all(|&(_, v)| v));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn range_constraint_proves_dont_care_safety() {
        // 3 of 4 decoder lines: only sel == 3 violates, so the bank is
        // safe under the range contract sel < 3 and unsafe under
        // sel < 4.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let lines = b.decoder(&sel, 3);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        let lines = nl.output_port("hot").unwrap().nets.clone();
        let port = nl.input_port("sel").unwrap().nets.clone();
        let safe = check_one_hot_bank_sat(&nl, &lines, Some((&port, 3)), None);
        assert_eq!(safe.status, OneHotStatus::ProvedSat);
        let wide = check_one_hot_bank_sat(&nl, &lines, Some((&port, 4)), None);
        match wide.status {
            OneHotStatus::Refuted { assignment } => {
                // The only in-range witness is sel == 3.
                for net in &port {
                    assert_eq!(
                        assignment.iter().find(|&&(n, _)| n == net.index()),
                        Some(&(net.index(), true))
                    );
                }
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn range_port_bits_outside_the_cone_still_constrain() {
        // Bank [s0, s0, ¬s0] violates exactly-one iff s0 = 1 (two
        // hot); its cone never sees s1, but the range constraint
        // sel < 2 must still pin s1 = 0 in the witness.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 2);
        let inv = b.not(sel[0]);
        let bank = vec![sel[0], sel[0], inv];
        b.output_bus("hot", &bank);
        let nl = b.finish();
        let bank = nl.output_port("hot").unwrap().nets.clone();
        let port = nl.input_port("sel").unwrap().nets.clone();
        let r = check_one_hot_bank_sat(&nl, &bank, Some((&port, 2)), None);
        match r.status {
            OneHotStatus::Refuted { assignment } => {
                let value_of = |net: NetId| {
                    assignment
                        .iter()
                        .find(|&&(n, _)| n == net.index())
                        .map(|&(_, v)| v)
                };
                assert_eq!(value_of(port[0]), Some(true));
                assert_eq!(value_of(port[1]), Some(false));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
        // sel < 1 forces s0 = 0, which excludes the only violation:
        // range don't-care safety through an off-cone port bit.
        let r = check_one_hot_bank_sat(&nl, &bank, Some((&port, 1)), None);
        assert_eq!(r.status, OneHotStatus::ProvedSat);
    }

    #[test]
    fn invalid_cone_reported() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let g = b.and(x[0], x[1]);
        b.output_bus("y", &[g]);
        let nl = b.finish();
        // Corrupt the And into a self-reference.
        let broken = nl.with_gate_replaced(g.index(), Gate::And(g, g));
        assert!(matches!(
            report(&broken, &[g]).status,
            OneHotStatus::ConeInvalid(_)
        ));
    }
}
