#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Formal verification of generated netlists.
//!
//! Simulation-based testing samples the input space; this crate proves
//! properties over *all* inputs by compiling a combinational netlist
//! into ROBDDs (one per output bit) and exploiting canonicity: two
//! functions are equivalent iff their BDD node handles coincide.
//!
//! Used by the test suite to *prove* that the generated Fig. 1
//! converter equals software unranking for every index (not just the
//! sampled ones), with out-of-range indices treated as don't-cares.
//!
//! The symbolic layer is complemented by a batched *simulation* layer
//! ([`exhaustive_check_batched`], [`find_one_hot_violation_batched`]):
//! exhaustive sweeps through the word-level `BatchSim`, one word of
//! indices per netlist walk — 64 lanes at `u64`, 256/512 at the wide
//! words via [`exhaustive_check_batched_wide`] — used where a concrete
//! first-mismatch witness (or a BDD-independent cross-check) is
//! wanted. A third, sharded layer ([`exhaustive_check_parallel`],
//! [`exhaustive_check_parallel_wide`],
//! [`find_one_hot_violation_parallel`]) fans the batched sweep out over
//! OS threads — contiguous per-worker index blocks over one shared
//! compiled tape — with the same deterministic lowest-index reporting
//! as the sequential sweeps, at every lane width.
//!
//! ```
//! use hwperm_logic::Builder;
//! use hwperm_verify::CompiledNetlist;
//!
//! // Prove x + y == y + x for all 8-bit x, y, structurally different
//! // netlists notwithstanding.
//! let build = |swap: bool| {
//!     let mut b = Builder::new();
//!     let x = b.input_bus("x", 8);
//!     let y = b.input_bus("y", 8);
//!     let s = if swap { b.add_expand(&y, &x) } else { b.add_expand(&x, &y) };
//!     b.output_bus("s", &s);
//!     b.finish()
//! };
//! let a = CompiledNetlist::compile(&build(false)).unwrap();
//! let c = CompiledNetlist::compile(&build(true)).unwrap();
//! assert!(a.equivalent(&c).unwrap());
//! ```

//!
//! A fourth layer turns the sweeps inward: [`stuck_at_campaign`] runs
//! the single-stuck-at fault universe of a netlist through 64-lane
//! fault overlays (`hwperm-faults`), classifying every fault as
//! detected, silent, or masked against the golden table — the
//! measurement side of the robustness story whose runtime side is
//! `hwperm_core`'s guarded streams.

mod campaign;
mod exhaustive;
mod miter;
mod onehot;
mod oracle;
mod parallel;

pub use campaign::{
    golden_output_words, single_stuck_at_universe, stuck_at_campaign, stuck_at_campaign_scalar,
    stuck_at_campaign_wide, CampaignReport, FaultOutcome, FaultVerdict,
};
pub use exhaustive::{
    exhaustive_check_batched, exhaustive_check_batched_wide, exhaustive_check_batched_with,
    exhaustive_check_scalar, exhaustive_check_scalar_with, find_one_hot_violation_batched,
    BatchedExpectation, ExhaustiveMismatch, WideExpectation,
};
pub use miter::{
    prove_against_table, prove_against_table_budgeted, prove_equivalent, prove_equivalent_budgeted,
    prove_inverse_identity, prove_pipelined_equivalent, ProofStats, ProveOutcome,
};
pub use onehot::{
    check_one_hot_bank, check_one_hot_bank_escalated, check_one_hot_bank_sat, OneHotReport,
    OneHotStatus, DEFAULT_NODE_BUDGET, DEFAULT_SAT_CONFLICT_BUDGET,
};
pub use oracle::{
    expected_combination_words, expected_permutation_words, expected_permutation_words_parallel,
    expected_variation_words,
};
pub use parallel::{
    exhaustive_check_parallel, exhaustive_check_parallel_repeat, exhaustive_check_parallel_wide,
    exhaustive_check_parallel_with, find_one_hot_violation_parallel, shard_ranges,
};

use hwperm_bdd::{Manager, NodeId};
use hwperm_bignum::Ubig;
use hwperm_logic::{Gate, Netlist};
use std::collections::BTreeMap;
use std::fmt;

/// Why a netlist could not be compiled or compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The netlist contains registers; only combinational logic can be
    /// compiled to BDDs directly.
    Sequential,
    /// The two netlists' port shapes differ.
    PortMismatch(String),
    /// The netlist has more input bits than the configured variable cap
    /// (BDD blow-up guard).
    TooManyInputs {
        /// Input bits found.
        bits: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Sequential => write!(f, "netlist contains registers"),
            VerifyError::PortMismatch(what) => write!(f, "port mismatch: {what}"),
            VerifyError::TooManyInputs { bits, cap } => {
                write!(f, "{bits} input bits exceed the {cap}-variable cap")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Default cap on BDD variables (input bits).
pub const DEFAULT_VAR_CAP: usize = 24;

/// A combinational netlist compiled to one ROBDD per output bit.
#[derive(Debug)]
pub struct CompiledNetlist {
    manager: Manager,
    /// Port name → BDDs for its bits (LSB first).
    outputs: BTreeMap<String, Vec<NodeId>>,
    /// Port name → width, in declaration order, for shape comparison.
    input_shape: Vec<(String, usize)>,
}

impl CompiledNetlist {
    /// Compiles with the default variable cap.
    pub fn compile(netlist: &Netlist) -> Result<Self, VerifyError> {
        Self::compile_capped(netlist, DEFAULT_VAR_CAP)
    }

    /// Compiles a combinational netlist, assigning BDD variables to
    /// input port bits in declaration order (LSB of the first port is
    /// variable 0).
    pub fn compile_capped(netlist: &Netlist, cap: usize) -> Result<Self, VerifyError> {
        if netlist.register_count() > 0 {
            return Err(VerifyError::Sequential);
        }
        let total_bits: usize = netlist.input_ports().iter().map(|p| p.nets.len()).sum();
        if total_bits > cap {
            return Err(VerifyError::TooManyInputs {
                bits: total_bits,
                cap,
            });
        }
        let mut manager = Manager::new(total_bits);
        // Variable for each input net.
        let mut node_of: Vec<NodeId> = vec![NodeId::FALSE; netlist.len()];
        let mut var = 0usize;
        for port in netlist.input_ports() {
            for net in &port.nets {
                node_of[net.index()] = manager.var(var);
                var += 1;
            }
        }
        // Topological sweep.
        for (i, gate) in netlist.gates().iter().enumerate() {
            node_of[i] = match *gate {
                Gate::Input => node_of[i],
                Gate::Const(v) => {
                    if v {
                        NodeId::TRUE
                    } else {
                        NodeId::FALSE
                    }
                }
                Gate::Not(a) => manager.not(node_of[a.index()]),
                Gate::And(a, b) => manager.and(node_of[a.index()], node_of[b.index()]),
                Gate::Or(a, b) => manager.or(node_of[a.index()], node_of[b.index()]),
                Gate::Xor(a, b) => manager.xor(node_of[a.index()], node_of[b.index()]),
                Gate::Mux { sel, a, b } => {
                    manager.ite(node_of[sel.index()], node_of[b.index()], node_of[a.index()])
                }
                Gate::Dff { .. } => unreachable!("checked above"),
            };
        }
        let outputs = netlist
            .output_ports()
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    p.nets.iter().map(|n| node_of[n.index()]).collect(),
                )
            })
            .collect();
        let input_shape = netlist
            .input_ports()
            .iter()
            .map(|p| (p.name.clone(), p.nets.len()))
            .collect();
        Ok(CompiledNetlist {
            manager,
            outputs,
            input_shape,
        })
    }

    /// Number of BDD variables (input bits).
    pub fn num_vars(&self) -> usize {
        self.manager.num_vars()
    }

    /// Evaluates an output port under a concrete input assignment (bit
    /// `i` of the flattened input vector = variable `i`). Mostly for
    /// sanity cross-checks against the gate-level simulator.
    pub fn eval_output(&self, port: &str, inputs: &Ubig) -> Ubig {
        let assignment: Vec<bool> = (0..self.num_vars()).map(|i| inputs.bit(i)).collect();
        let mut out = Ubig::zero();
        for (bit, &node) in self.outputs[port].iter().enumerate() {
            if self.manager.eval(node, &assignment) {
                out.set_bit(bit, true);
            }
        }
        out
    }

    /// Proves (or refutes) unconditional equivalence with another
    /// compiled netlist: same port shapes, and every output bit's BDD
    /// identical. Complete over all `2^vars` inputs.
    ///
    /// Both netlists must have been compiled by this crate so variable
    /// numbering agrees; callers are responsible for matching input port
    /// order.
    pub fn equivalent(&self, other: &CompiledNetlist) -> Result<bool, VerifyError> {
        if self.input_shape != other.input_shape {
            return Err(VerifyError::PortMismatch(format!(
                "inputs {:?} vs {:?}",
                self.input_shape, other.input_shape
            )));
        }
        if self.outputs.len() != other.outputs.len() {
            return Err(VerifyError::PortMismatch("output port count".into()));
        }
        for (name, bdds) in &self.outputs {
            let Some(theirs) = other.outputs.get(name) else {
                return Err(VerifyError::PortMismatch(format!("missing port {name}")));
            };
            if bdds.len() != theirs.len() {
                return Err(VerifyError::PortMismatch(format!("width of {name}")));
            }
        }
        // Both compilations number variables identically (input port
        // declaration order), so per-bit functions can be compared by
        // synchronized descent over the two reduced DAGs — canonicity
        // makes that sound and linear in the smaller BDD.
        for (name, bdds) in &self.outputs {
            let theirs = &other.outputs[name];
            for (&a, &b) in bdds.iter().zip(theirs) {
                if !equal_functions(&self.manager, a, &other.manager, b) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Proves conditional equivalence against a specification closure:
    /// for every input `x` with `precondition(x)` true, each output port
    /// must equal `spec(x)` for that port. Complete (exhaustive over the
    /// BDD domain, which the cap keeps tractable).
    ///
    /// Returns the first counterexample input found, if any.
    pub fn verify_against_spec(
        &self,
        precondition: impl Fn(&Ubig) -> bool,
        spec: impl Fn(&Ubig) -> BTreeMap<String, Ubig>,
    ) -> Option<Ubig> {
        // The BDDs make per-input evaluation cheap and exact; sweeping
        // the domain is complete because the variable cap bounds it.
        let vars = self.num_vars();
        for x in 0u64..(1u64 << vars) {
            let input = Ubig::from(x);
            if !precondition(&input) {
                continue;
            }
            let expected = spec(&input);
            for (port, want) in &expected {
                if &self.eval_output(port, &input) != want {
                    return Some(input);
                }
            }
        }
        None
    }
}

/// Semantic equality of two BDDs living in different managers with the
/// same variable numbering, by synchronized structural descent with
/// memoization.
fn equal_functions(ma: &Manager, a: NodeId, mb: &Manager, b: NodeId) -> bool {
    fn rec(
        ma: &Manager,
        a: NodeId,
        mb: &Manager,
        b: NodeId,
        seen: &mut std::collections::HashSet<(NodeId, NodeId)>,
    ) -> bool {
        if a == NodeId::FALSE || a == NodeId::TRUE || b == NodeId::FALSE || b == NodeId::TRUE {
            // Terminals share ids across managers; a terminal can never
            // equal an internal node (reduced BDDs have no redundant
            // tests).
            return a == b;
        }
        if !seen.insert((a, b)) {
            // BDDs are DAGs: a revisited pair was already proven equal
            // (any mismatch returns false immediately).
            return true;
        }
        let (la, a0, a1) = ma.node_triple(a);
        let (lb, b0, b1) = mb.node_triple(b);
        la == lb && rec(ma, a0, mb, b0, seen) && rec(ma, a1, mb, b1, seen)
    }
    let mut seen = std::collections::HashSet::new();
    rec(ma, a, mb, b, &mut seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Builder;

    #[test]
    fn compile_rejects_sequential() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let q = b.dff(x[0], false);
        b.output_bus("y", &[q]);
        assert_eq!(
            CompiledNetlist::compile(&b.finish()).unwrap_err(),
            VerifyError::Sequential
        );
    }

    #[test]
    fn compile_rejects_oversized() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 30);
        b.output_bus("y", &x);
        assert!(matches!(
            CompiledNetlist::compile(&b.finish()),
            Err(VerifyError::TooManyInputs { bits: 30, .. })
        ));
    }

    #[test]
    fn bdd_eval_matches_simulator() {
        use hwperm_logic::Simulator;
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        let nl = b.finish();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = Simulator::new(nl);
        for xv in 0..16u64 {
            for yv in 0..16u64 {
                sim.set_input_u64("x", xv);
                sim.set_input_u64("y", yv);
                sim.eval();
                let flat = Ubig::from(xv | (yv << 4));
                assert_eq!(compiled.eval_output("s", &flat), sim.read_output("s"));
                assert_eq!(compiled.eval_output("c", &flat), sim.read_output("c"));
            }
        }
    }

    #[test]
    fn structurally_different_equal_adders_proven_equivalent() {
        let build = |reverse: bool| {
            let mut b = Builder::new();
            let x = b.input_bus("x", 6);
            let y = b.input_bus("y", 6);
            let s = if reverse {
                b.add_expand(&y, &x)
            } else {
                b.add_expand(&x, &y)
            };
            b.output_bus("s", &s);
            b.finish()
        };
        let a = CompiledNetlist::compile(&build(false)).unwrap();
        let c = CompiledNetlist::compile(&build(true)).unwrap();
        assert_eq!(a.equivalent(&c), Ok(true));
    }

    #[test]
    fn inequivalence_detected() {
        let build = |sub: bool| {
            let mut b = Builder::new();
            let x = b.input_bus("x", 4);
            let y = b.input_bus("y", 4);
            let out = if sub {
                b.sub(&x, &y).0
            } else {
                b.add(&x, &y).0
            };
            b.output_bus("o", &out);
            b.finish()
        };
        let a = CompiledNetlist::compile(&build(false)).unwrap();
        let s = CompiledNetlist::compile(&build(true)).unwrap();
        assert_eq!(a.equivalent(&s), Ok(false));
    }

    #[test]
    fn port_mismatch_reported() {
        let mk = |w: usize| {
            let mut b = Builder::new();
            let x = b.input_bus("x", w);
            b.output_bus("y", &x);
            CompiledNetlist::compile(&b.finish()).unwrap()
        };
        assert!(matches!(
            mk(3).equivalent(&mk(4)),
            Err(VerifyError::PortMismatch(_))
        ));
    }
}
