//! SAT-backed proof obligations: miter equivalence, table conformance,
//! inverse-composition identities, and bounded model checking of the
//! pipelined families.
//!
//! This is the third proof engine in the crate, complementing the BDD
//! layer (canonicity-based, capped at [`crate::DEFAULT_VAR_CAP`] input
//! bits) and the exhaustive simulation sweeps (concrete, linear in the
//! input space). The SAT route encodes the compiled simulation tape to
//! CNF through `hwperm-sat` and asks for a *refutation witness*; UNSAT
//! is the proof. Its cost tracks circuit structure rather than raw
//! input-space size, which is what lets the converter be verified at
//! n = 8–9 where the sweeps' oracle tables and the BDD sweep loop
//! become the bottleneck.
//!
//! Every refutation is decoded back through the tape: the witness
//! index is replayed through [`SimProgram::exec`] (and, for sequential
//! checks, [`SimProgram::latch`]) and reported as the same
//! [`ExhaustiveMismatch`] the exhaustive sweeps emit, so a SAT
//! counterexample and a sweep counterexample for the same fault read
//! identically.

use crate::exhaustive::ExhaustiveMismatch;
use crate::VerifyError;
use hwperm_logic::{Netlist, SimProgram};
use hwperm_sat::{
    encode_combinational, encode_combinational_with, encode_unrolled, read_word, Cnf, FrameLits,
    Lit, SatResult, SolverStats,
};

/// Size and search statistics of one SAT proof obligation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// CNF variables in the encoded obligation.
    pub vars: usize,
    /// CNF clauses in the encoded obligation.
    pub clauses: usize,
    /// Conflicts the solver went through.
    pub conflicts: u64,
    /// Decisions the solver took.
    pub decisions: u64,
    /// Literals the solver propagated.
    pub propagations: u64,
}

impl ProofStats {
    fn new(cnf: &Cnf, stats: SolverStats) -> ProofStats {
        ProofStats {
            vars: cnf.num_vars(),
            clauses: cnf.num_clauses(),
            conflicts: stats.conflicts,
            decisions: stats.decisions,
            propagations: stats.propagations,
        }
    }
}

/// Verdict of a SAT proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveOutcome {
    /// The property holds for every input in scope (UNSAT miter).
    Proved(ProofStats),
    /// A concrete counterexample, decoded through the tape into the
    /// exhaustive sweeps' first-mismatch format.
    Refuted(ExhaustiveMismatch, ProofStats),
    /// The conflict budget ran out before a verdict.
    Unknown(ProofStats),
}

impl ProveOutcome {
    /// `true` iff the obligation was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, ProveOutcome::Proved(_))
    }

    /// The proof statistics, whatever the verdict.
    pub fn stats(&self) -> ProofStats {
        match self {
            ProveOutcome::Proved(s) | ProveOutcome::Refuted(_, s) | ProveOutcome::Unknown(s) => *s,
        }
    }
}

/// One literal per output-bit disagreement, OR-ed into the miter root.
fn miter_root(cnf: &mut Cnf, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "miter over unequal widths");
    let diffs: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| cnf.xor(x, y)).collect();
    cnf.or_many(&diffs)
}

/// Checks the two netlists expose identical port shapes (same names,
/// widths and declaration order on both sides).
fn check_port_shapes(a: &Netlist, b: &Netlist) -> Result<(), VerifyError> {
    let shape = |nl: &Netlist, out: bool| -> Vec<(String, usize)> {
        let ports = if out {
            nl.output_ports()
        } else {
            nl.input_ports()
        };
        ports
            .iter()
            .map(|p| (p.name.clone(), p.nets.len()))
            .collect()
    };
    if shape(a, false) != shape(b, false) {
        return Err(VerifyError::PortMismatch(format!(
            "inputs {:?} vs {:?}",
            shape(a, false),
            shape(b, false)
        )));
    }
    if shape(a, true) != shape(b, true) {
        return Err(VerifyError::PortMismatch(format!(
            "outputs {:?} vs {:?}",
            shape(a, true),
            shape(b, true)
        )));
    }
    Ok(())
}

/// Flattened input literals of a frame, input ports in declaration
/// order, LSB first — the same numbering `CompiledNetlist` gives BDD
/// variables, so witness words read across engines.
fn flat_inputs(program: &SimProgram, frame: &FrameLits) -> Vec<Lit> {
    program
        .netlist()
        .input_ports()
        .iter()
        .flat_map(|p| {
            let name = p.name.clone();
            frame.input(program, &name)
        })
        .collect()
}

/// Replays one combinational frame of `program` with its flattened
/// input vector driven to `index`, returning each output port's packed
/// word (declaration order).
fn replay_flat(program: &SimProgram, index: u64) -> Vec<(String, u64)> {
    let mut values: Vec<bool> = program.initial_values();
    let mut bit = 0usize;
    for port in program.netlist().input_ports() {
        let slots = program.input_slots(&port.name).to_vec();
        for slot in slots {
            values[slot as usize] = bit < 64 && (index >> bit) & 1 == 1;
            bit += 1;
        }
    }
    program.exec(&mut values);
    program
        .netlist()
        .output_ports()
        .iter()
        .map(|p| {
            let word = program
                .output_slots(&p.name)
                .iter()
                .enumerate()
                .take(64)
                .fold(0u64, |acc, (i, &slot)| {
                    acc | ((values[slot as usize] as u64) << i)
                });
            (p.name.clone(), word)
        })
        .collect()
}

/// Proves (or refutes) unconditional combinational equivalence of two
/// netlists by a SAT miter: shared input variables, per-output-bit
/// XOR, one satisfiability query. UNSAT over the whole input space is
/// the proof; a model is decoded through both tapes into the
/// exhaustive first-mismatch format (`got` from `a`, `want` from `b`).
///
/// The gate-helper memo in the CNF builder structurally hashes the two
/// encodings against each other, so proving a builder-optimized
/// netlist against its unoptimized twin mostly collapses at encode
/// time.
///
/// Requires combinational netlists with identical port shapes and at
/// most 64 total input bits / 64 bits per output port (witness words
/// are `u64`, like the sweeps).
pub fn prove_equivalent(a: &Netlist, b: &Netlist) -> Result<ProveOutcome, VerifyError> {
    prove_equivalent_budgeted(a, b, None)
}

/// [`prove_equivalent`] with a conflict budget; exceeding it yields
/// [`ProveOutcome::Unknown`].
pub fn prove_equivalent_budgeted(
    a: &Netlist,
    b: &Netlist,
    max_conflicts: Option<u64>,
) -> Result<ProveOutcome, VerifyError> {
    if a.register_count() > 0 || b.register_count() > 0 {
        return Err(VerifyError::Sequential);
    }
    check_port_shapes(a, b)?;
    let total_bits: usize = a.input_ports().iter().map(|p| p.nets.len()).sum();
    if total_bits > 64 {
        return Err(VerifyError::TooManyInputs {
            bits: total_bits,
            cap: 64,
        });
    }
    let pa = SimProgram::compile(a.clone());
    let pb = SimProgram::compile(b.clone());
    let mut cnf = Cnf::new();
    let fa = encode_combinational(&pa, &mut cnf);
    let bound: Vec<(String, Vec<Lit>)> = pa
        .netlist()
        .input_ports()
        .iter()
        .map(|p| (p.name.clone(), fa.input(&pa, &p.name)))
        .collect();
    let fb = encode_combinational_with(&pb, &mut cnf, &bound);
    let mut diffs: Vec<Lit> = Vec::new();
    for port in pa.netlist().output_ports() {
        let name = port.name.clone();
        let oa = fa.output(&pa, &name);
        let ob = fb.output(&pb, &name);
        diffs.push(miter_root(&mut cnf, &oa, &ob));
    }
    let root = cnf.or_many(&diffs);
    cnf.assert_lit(root);
    let (result, stats) = cnf.solve_budgeted(max_conflicts);
    let proof = ProofStats::new(&cnf, stats);
    Ok(match result {
        SatResult::Unsat => ProveOutcome::Proved(proof),
        SatResult::Unknown => ProveOutcome::Unknown(proof),
        SatResult::Sat(model) => {
            let index = read_word(&model, &flat_inputs(&pa, &fa));
            let got = replay_flat(&pa, index);
            let want = replay_flat(&pb, index);
            let (port, g, w) = got
                .iter()
                .zip(&want)
                .find(|((_, g), (_, w))| g != w)
                .map(|((p, g), (_, w))| (p.clone(), *g, *w))
                .expect("SAT model must witness a differing output");
            ProveOutcome::Refuted(
                ExhaustiveMismatch {
                    index,
                    port,
                    got: g,
                    want: w,
                },
                proof,
            )
        }
    })
}

/// Proves (or refutes) that a combinational netlist matches a packed
/// expectation table on every in-range index: `expected[i]` is the
/// required word on `output` when `input` is driven with `i`, for all
/// `i < expected.len()` (out-of-range inputs are don't-cares — the
/// paper's convention for the converter).
///
/// The table is encoded as one clause per (index, output bit): "input
/// differs from `i`, or the bit has its table polarity", defining a
/// `want` vector the miter compares against; the range guard is a
/// ripple comparator. UNSAT proves conformance. A model is decoded
/// through the tape into exactly the sweeps' [`ExhaustiveMismatch`]
/// (`got` by replaying the witness index, `want` from the table).
///
/// # Panics
/// Panics if either port is missing, the input port cannot represent
/// every index, or a port exceeds the 64-bit witness path (the same
/// contract as [`crate::exhaustive_check_batched`]).
pub fn prove_against_table(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
) -> Result<ProveOutcome, VerifyError> {
    prove_against_table_budgeted(netlist, input, output, expected, None)
}

/// [`prove_against_table`] with a conflict budget.
pub fn prove_against_table_budgeted(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
    max_conflicts: Option<u64>,
) -> Result<ProveOutcome, VerifyError> {
    if netlist.register_count() > 0 {
        return Err(VerifyError::Sequential);
    }
    crate::exhaustive::port_width_checked(netlist, input, output, expected.len());
    let program = SimProgram::compile(netlist.clone());
    let mut cnf = Cnf::new();
    let frame = encode_combinational(&program, &mut cnf);
    let in_lits = frame.input(&program, input);
    let out_lits = frame.output(&program, output);
    // The table: a fresh `want` vector pinned, index by index, through
    // clauses of width |input| + 1 ("x ≠ i, or want bit = table bit").
    let want: Vec<Lit> = out_lits.iter().map(|_| cnf.new_var()).collect();
    let mut clause: Vec<Lit> = Vec::with_capacity(in_lits.len() + 1);
    for (i, &word) in expected.iter().enumerate() {
        clause.clear();
        for (j, &l) in in_lits.iter().enumerate() {
            // True exactly when input bit j differs from index bit j.
            clause.push(if (i >> j) & 1 == 1 { !l } else { l });
        }
        clause.push(Lit::positive(0)); // placeholder, patched per bit
        for (b, &w) in want.iter().enumerate() {
            *clause.last_mut().expect("placeholder") = if (word >> b) & 1 == 1 { w } else { !w };
            cnf.add_clause(&clause);
        }
    }
    let in_range = cnf.less_than_const(&in_lits, expected.len() as u64);
    cnf.assert_lit(in_range);
    let root = miter_root(&mut cnf, &out_lits, &want);
    cnf.assert_lit(root);
    let (result, stats) = cnf.solve_budgeted(max_conflicts);
    let proof = ProofStats::new(&cnf, stats);
    Ok(match result {
        SatResult::Unsat => ProveOutcome::Proved(proof),
        SatResult::Unknown => ProveOutcome::Unknown(proof),
        SatResult::Sat(model) => {
            let index = read_word(&model, &in_lits);
            let got = replay_port(&program, input, index, output);
            ProveOutcome::Refuted(
                ExhaustiveMismatch {
                    index,
                    port: output.to_string(),
                    got,
                    want: expected[index as usize],
                },
                proof,
            )
        }
    })
}

/// Replays one combinational settle driving only `input`, reading
/// `output` (other input ports, if any, stay at zero — matching the
/// sweeps, which drive a single port).
fn replay_port(program: &SimProgram, input: &str, index: u64, output: &str) -> u64 {
    let mut values: Vec<bool> = program.initial_values();
    for (i, &slot) in program.input_slots(input).iter().enumerate().take(64) {
        values[slot as usize] = (index >> i) & 1 == 1;
    }
    program.exec(&mut values);
    program
        .output_slots(output)
        .iter()
        .enumerate()
        .take(64)
        .fold(0u64, |acc, (i, &slot)| {
            acc | ((values[slot as usize] as u64) << i)
        })
}

/// Proves (or refutes) the inverse-composition identity
/// `g(f(i)) == i` for every `i < bound`: `f`'s output port `f_out`
/// feeds `g`'s input port `g_in` variable-for-variable, and `g_out`
/// is mitered against `f`'s input. This is the oracle-*free* converter
/// theorem — converter then rank circuit reproduce the index — whose
/// CNF never materializes an `n!`-entry table, so it stays affordable
/// past the table encoding's comfort zone.
///
/// # Panics
/// Panics if the named ports are missing, have mismatched widths
/// (`f_out` vs `g_in`, `g_out` vs `f_in`), or `f_in` exceeds 63 bits.
#[allow(clippy::too_many_arguments)] // two (netlist, in, out) triples + bound + budget
pub fn prove_inverse_identity(
    f: &Netlist,
    f_in: &str,
    f_out: &str,
    g: &Netlist,
    g_in: &str,
    g_out: &str,
    bound: u64,
    max_conflicts: Option<u64>,
) -> Result<ProveOutcome, VerifyError> {
    if f.register_count() > 0 || g.register_count() > 0 {
        return Err(VerifyError::Sequential);
    }
    let pf = SimProgram::compile(f.clone());
    let pg = SimProgram::compile(g.clone());
    let mut cnf = Cnf::new();
    let ff = encode_combinational(&pf, &mut cnf);
    let f_out_lits = ff.output(&pf, f_out);
    let fg = encode_combinational_with(&pg, &mut cnf, &[(g_in.to_string(), f_out_lits)]);
    let f_in_lits = ff.input(&pf, f_in);
    let g_out_lits = fg.output(&pg, g_out);
    assert!(
        f_in_lits.len() < 64,
        "input port {f_in:?} too wide for a u64 witness"
    );
    assert_eq!(
        f_in_lits.len(),
        g_out_lits.len(),
        "identity miter needs {f_in:?} and {g_out:?} to match widths"
    );
    let in_range = cnf.less_than_const(&f_in_lits, bound);
    cnf.assert_lit(in_range);
    let root = miter_root(&mut cnf, &g_out_lits, &f_in_lits);
    cnf.assert_lit(root);
    let (result, stats) = cnf.solve_budgeted(max_conflicts);
    let proof = ProofStats::new(&cnf, stats);
    Ok(match result {
        SatResult::Unsat => ProveOutcome::Proved(proof),
        SatResult::Unknown => ProveOutcome::Unknown(proof),
        SatResult::Sat(model) => {
            let index = read_word(&model, &f_in_lits);
            let mid = replay_port(&pf, f_in, index, f_out);
            let got = replay_port(&pg, g_in, mid, g_out);
            ProveOutcome::Refuted(
                ExhaustiveMismatch {
                    index,
                    port: g_out.to_string(),
                    got,
                    want: index,
                },
                proof,
            )
        }
    })
}

/// Bounded model check: proves (or refutes) that the pipelined netlist
/// `seq`, fed a held input from reset and clocked `latency` times,
/// settles `output` at cycle `latency` to exactly what the
/// combinational netlist `comb` produces on the same input — for every
/// input below `bound`. This is the `k`-step unrolling over the DFF
/// slot pairs: `latency + 1` frames, frame 0 registers at reset,
/// inputs tied across frames, miter on the last frame.
///
/// A counterexample is decoded by replaying the witness through the
/// sequential tape (settle + latch per cycle, like
/// `Simulator::step`) and reported in the sweeps' format.
///
/// # Panics
/// Panics if ports are missing, widths mismatch, or `input` exceeds
/// 63 bits.
#[allow(clippy::too_many_arguments)]
pub fn prove_pipelined_equivalent(
    seq: &Netlist,
    comb: &Netlist,
    input: &str,
    output: &str,
    latency: usize,
    bound: u64,
    max_conflicts: Option<u64>,
) -> Result<ProveOutcome, VerifyError> {
    if comb.register_count() > 0 {
        return Err(VerifyError::Sequential);
    }
    let ps = SimProgram::compile(seq.clone());
    let pc = SimProgram::compile(comb.clone());
    let mut cnf = Cnf::new();
    let frames = encode_unrolled(&ps, &mut cnf, latency + 1, true);
    let first = &frames[0];
    let last = frames.last().expect("at least one frame");
    let in_lits = first.input(&ps, input);
    assert!(
        in_lits.len() < 64,
        "input port {input:?} too wide for a u64 witness"
    );
    let fc = encode_combinational_with(&pc, &mut cnf, &[(input.to_string(), in_lits.clone())]);
    let seq_out = last.output(&ps, output);
    let comb_out = fc.output(&pc, output);
    let in_range = cnf.less_than_const(&in_lits, bound);
    cnf.assert_lit(in_range);
    let root = miter_root(&mut cnf, &seq_out, &comb_out);
    cnf.assert_lit(root);
    let (result, stats) = cnf.solve_budgeted(max_conflicts);
    let proof = ProofStats::new(&cnf, stats);
    Ok(match result {
        SatResult::Unsat => ProveOutcome::Proved(proof),
        SatResult::Unknown => ProveOutcome::Unknown(proof),
        SatResult::Sat(model) => {
            let index = read_word(&model, &in_lits);
            let got = replay_sequential(&ps, input, index, output, latency);
            let want = replay_port(&pc, input, index, output);
            ProveOutcome::Refuted(
                ExhaustiveMismatch {
                    index,
                    port: output.to_string(),
                    got,
                    want,
                },
                proof,
            )
        }
    })
}

/// Replays `latency` clock cycles of the sequential tape with `input`
/// held at `index`, then reads `output` after a final settle.
fn replay_sequential(
    program: &SimProgram,
    input: &str,
    index: u64,
    output: &str,
    latency: usize,
) -> u64 {
    let mut values: Vec<bool> = program.initial_values();
    let mut scratch = Vec::new();
    for (i, &slot) in program.input_slots(input).iter().enumerate().take(64) {
        values[slot as usize] = (index >> i) & 1 == 1;
    }
    for _ in 0..latency {
        program.exec(&mut values);
        program.latch(&mut values, &mut scratch);
    }
    program.exec(&mut values);
    program
        .output_slots(output)
        .iter()
        .enumerate()
        .take(64)
        .fold(0u64, |acc, (i, &slot)| {
            acc | ((values[slot as usize] as u64) << i)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Builder;

    fn adder(optimized: bool) -> Netlist {
        let mut b = if optimized {
            Builder::new()
        } else {
            Builder::new_unoptimized()
        };
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        b.finish()
    }

    #[test]
    fn optimized_and_unoptimized_adders_equivalent() {
        let a = adder(true);
        let b = adder(false);
        let outcome = prove_equivalent(&a, &b).unwrap();
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn folding_heavy_build_proved_against_unoptimized_twin() {
        // x + 5: the constant operand gives the peephole rules real
        // work, so the two builds differ structurally.
        let incr = |optimized: bool| {
            let mut b = if optimized {
                Builder::new()
            } else {
                Builder::new_unoptimized()
            };
            let x = b.input_bus("x", 5);
            let k = b.constant_bus(5, &hwperm_bignum::Ubig::from(5u64));
            let (s, c) = b.add(&x, &k);
            b.output_bus("s", &s);
            b.output_bus("c", &[c]);
            b.finish()
        };
        let opt = incr(true);
        let raw = incr(false);
        assert!(
            raw.len() > opt.len(),
            "unoptimized build is genuinely bigger"
        );
        let outcome = prove_equivalent(&opt, &raw).unwrap();
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn inequivalent_netlists_refuted_with_decoded_witness() {
        let a = adder(true);
        let mut bb = Builder::new();
        let x = bb.input_bus("x", 4);
        let y = bb.input_bus("y", 4);
        let (s, c) = bb.sub(&x, &y);
        bb.output_bus("s", &s);
        bb.output_bus("c", &[c]);
        let b = bb.finish();
        let ProveOutcome::Refuted(mismatch, _) = prove_equivalent(&a, &b).unwrap() else {
            panic!("adder vs subtractor must be refuted");
        };
        // The witness must be a real divergence: replay both sides.
        let xv = mismatch.index & 0xf;
        let yv = (mismatch.index >> 4) & 0xf;
        if mismatch.port == "s" {
            assert_eq!(mismatch.got, (xv + yv) & 0xf);
            assert_eq!(mismatch.want, xv.wrapping_sub(yv) & 0xf);
        }
        assert_ne!(mismatch.got, mismatch.want);
    }

    #[test]
    fn port_shape_mismatch_is_an_error() {
        let a = adder(true);
        let mut bb = Builder::new();
        let x = bb.input_bus("x", 3);
        bb.output_bus("s", &x);
        assert!(matches!(
            prove_equivalent(&a, &bb.finish()),
            Err(VerifyError::PortMismatch(_))
        ));
    }

    #[test]
    fn table_proof_accepts_and_refutes() {
        // y = x + 1 over 3 bits (wrapping).
        let mut b = Builder::new();
        let x = b.input_bus("x", 3);
        let one = b.constant_bus(3, &hwperm_bignum::Ubig::from(1u64));
        let (s, _) = b.add(&x, &one);
        b.output_bus("y", &s);
        let nl = b.finish();
        let table: Vec<u64> = (0..8).map(|i| (i + 1) & 7).collect();
        assert!(prove_against_table(&nl, "x", "y", &table)
            .unwrap()
            .is_proved());
        // Corrupt one entry: the proof must refute with that index.
        let mut bad = table.clone();
        bad[5] = 0;
        let ProveOutcome::Refuted(m, _) = prove_against_table(&nl, "x", "y", &bad).unwrap() else {
            panic!("corrupted table must refute");
        };
        assert_eq!(m.index, 5);
        assert_eq!(m.got, 6);
        assert_eq!(m.want, 0);
        assert_eq!(m.port, "y");
        // Don't-care beyond the table: a 5-entry prefix proves even
        // though entries 5..8 would mismatch.
        assert!(prove_against_table(&nl, "x", "y", &table[..5])
            .unwrap()
            .is_proved());
    }

    #[test]
    fn inverse_identity_on_tiny_circuits() {
        // f: y = x ^ 0b101 is its own inverse.
        let build = || {
            let mut b = Builder::new();
            let x = b.input_bus("x", 3);
            let k = b.constant_bus(3, &hwperm_bignum::Ubig::from(0b101u64));
            let y: Vec<_> = x.iter().zip(&k).map(|(&a, &c)| b.xor(a, c)).collect();
            b.output_bus("y", &y);
            b.finish()
        };
        let outcome =
            prove_inverse_identity(&build(), "x", "y", &build(), "x", "y", 8, None).unwrap();
        assert!(outcome.is_proved(), "got {outcome:?}");
        // And g = identity is *not* the inverse of f.
        let ident = {
            let mut b = Builder::new();
            let x = b.input_bus("x", 3);
            b.output_bus("y", &x);
            b.finish()
        };
        let ProveOutcome::Refuted(m, _) =
            prove_inverse_identity(&build(), "x", "y", &ident, "x", "y", 8, None).unwrap()
        else {
            panic!("identity is not f's inverse");
        };
        assert_eq!(m.got, m.index ^ 0b101);
        assert_eq!(m.want, m.index);
    }

    #[test]
    fn pipelined_register_chain_equals_wire() {
        // seq: x -> DFF -> DFF -> y (latency 2); comb: y = x.
        let mut sb = Builder::new();
        let x = sb.input_bus("x", 2);
        let r1 = sb.register_bus(&x, false);
        let r2 = sb.register_bus(&r1, false);
        sb.output_bus("y", &r2);
        let seq = sb.finish();
        let mut cb = Builder::new();
        let x = cb.input_bus("x", 2);
        cb.output_bus("y", &x);
        let comb = cb.finish();
        let outcome = prove_pipelined_equivalent(&seq, &comb, "x", "y", 2, 4, None).unwrap();
        assert!(outcome.is_proved(), "got {outcome:?}");
        // With the wrong latency the check must refute (output still
        // in flight: frame 1 shows the reset value for some input).
        let ProveOutcome::Refuted(m, _) =
            prove_pipelined_equivalent(&seq, &comb, "x", "y", 1, 4, None).unwrap()
        else {
            panic!("latency-1 read of a latency-2 pipe must refute");
        };
        assert_ne!(m.got, m.want);
        assert_eq!(m.want, m.index);
    }

    #[test]
    fn budget_zero_yields_unknown() {
        // A miter with real search space and no budget to explore it.
        let a = adder(true);
        let b = adder(false);
        match prove_equivalent_budgeted(&a, &b, Some(0)).unwrap() {
            ProveOutcome::Unknown(_) => {}
            // Encoding may collapse the miter at level 0, in which case
            // even a zero budget proves it — accept both, reject Refuted.
            ProveOutcome::Proved(_) => {}
            ProveOutcome::Refuted(m, _) => panic!("phantom refutation {m}"),
        }
    }
}
