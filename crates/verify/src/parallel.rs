//! Thread × lane sharded exhaustive verification.
//!
//! The batched sweeps in [`crate::exhaustive`] settle one word of test
//! vectors per netlist walk — 64 (`u64`), 256
//! ([`W256`](hwperm_logic::W256)) or 512
//! ([`W512`](hwperm_logic::W512)) lanes — but still occupy one core.
//! This module adds the second axis: the index space `[0, 2^w)` /
//! `[0, n!)` is split into contiguous per-worker blocks — the same
//! balanced-split idiom as `hwperm_core::ParallelPlan`, applied to
//! word-sized batches — and each worker runs the word-level sweep over
//! its block on its own OS thread, so throughput scales as *threads ×
//! lanes*.
//!
//! Workers share exactly one thing: the compiled
//! [`SimProgram`](hwperm_logic::SimProgram) behind an `Arc`. Each
//! worker's [`BatchSim`] is just a flat word value array over that
//! shared tape, so spinning up a worker costs one allocation, not one
//! netlist compilation.
//!
//! **Deterministic reporting guarantee:** the parallel sweeps return
//! *byte-identical* results to their sequential counterparts —
//! [`exhaustive_check_parallel`] reports the same lowest-index first
//! mismatch as [`crate::exhaustive_check_batched`] (same index, port,
//! got, want), and [`find_one_hot_violation_parallel`] the same lowest
//! violating input as [`crate::find_one_hot_violation_batched`] — for
//! every worker count. Shards are contiguous and ascending, every
//! worker reports the lowest divergence *within its shard*, and the
//! reduction takes the first report in shard order, which is therefore
//! the globally lowest index. Lanes are independent (combinational
//! words never mix bits across lanes), so the got/want words cannot
//! depend on which batch companions an index happens to ride with.

use crate::exhaustive::{
    check_batch_range, one_hot_sweep_total, port_width_checked, scan_one_hot_range,
    ExhaustiveMismatch, WideExpectation,
};
use hwperm_logic::{BatchSim, BatchSimulator, Netlist, SimProgram, SimWord, LANES};
use std::ops::Range;
use std::sync::Arc;

/// Splits `items` into `workers` contiguous, ascending ranges whose
/// sizes differ by at most one (the remainder spread over the leading
/// ranges — the same balanced split as `hwperm_core::ParallelPlan`).
/// Ranges beyond the item count are empty.
///
/// Public because it is the one sharding idiom every fan-out in the
/// workspace uses (batched sweeps here, block serving in
/// `hwperm-serve`), and shard boundaries are part of those components'
/// determinism contracts.
///
/// # Panics
/// Panics if `workers == 0`.
pub fn shard_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    assert!(workers >= 1, "need at least one worker");
    let per = items / workers;
    let rem = items % workers;
    let mut shards = Vec::with_capacity(workers);
    let mut cursor = 0usize;
    for i in 0..workers {
        let len = per + usize::from(i < rem);
        shards.push(cursor..cursor + len);
        cursor += len;
    }
    shards
}

/// Multi-threaded [`crate::exhaustive_check_batched`]: shards the index
/// space into contiguous per-worker blocks of 64-lane batches, sweeps
/// each block on its own thread, and reduces to the same deterministic
/// lowest-index first-mismatch report as the sequential sweep (see the
/// module docs for why the reports are byte-identical).
///
/// `workers = 1` degrades to the sequential sweep plus one thread
/// spawn; worker counts beyond the batch count leave the excess threads
/// with empty shards.
///
/// # Panics
/// Panics if `workers == 0`, either port is missing, the input port
/// cannot represent every index, or either port exceeds the 64-bit
/// `u64` fast path.
pub fn exhaustive_check_parallel(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
    workers: usize,
) -> Result<(), ExhaustiveMismatch> {
    exhaustive_check_parallel_wide::<u64>(netlist, input, output, expected, workers)
}

/// Width-generic [`exhaustive_check_parallel`]: every worker settles
/// [`SimWord::LANES`] indices per tape pass over the opcode-fused tape
/// ([`SimProgram::compile_fused`]), so throughput scales as *threads ×
/// lanes* with the lane axis at 64 (`u64`), 256
/// ([`W256`](hwperm_logic::W256)) or 512
/// ([`W512`](hwperm_logic::W512)). The deterministic reporting
/// guarantee holds across widths too: shards stay contiguous and
/// ascending in index order, so the reduction returns the same
/// lowest-index witness the canonical 64-lane sweep reports.
///
/// # Panics
/// Same conditions as [`exhaustive_check_parallel`].
pub fn exhaustive_check_parallel_wide<W: SimWord + Send + Sync>(
    netlist: &Netlist,
    input: &str,
    output: &str,
    expected: &[u64],
    workers: usize,
) -> Result<(), ExhaustiveMismatch> {
    let in_w = port_width_checked(netlist, input, output, expected.len());
    let out_w = netlist.output_port(output).unwrap().nets.len();
    let table = WideExpectation::<W>::new(in_w, out_w, expected);
    let program = SimProgram::compile_fused_shared(netlist.clone());
    exhaustive_check_parallel_with(&program, input, output, &table, workers)
}

/// Steady-state core of [`exhaustive_check_parallel`]: sweeps a
/// pre-transposed table over an already-compiled shared tape. Use this
/// when checking many tables (or repetitions) against one circuit so
/// compilation and transposition stay out of the measured region.
///
/// # Panics
/// Same conditions as [`exhaustive_check_parallel`].
pub fn exhaustive_check_parallel_with<W: SimWord + Send + Sync>(
    program: &Arc<SimProgram>,
    input: &str,
    output: &str,
    table: &WideExpectation<W>,
    workers: usize,
) -> Result<(), ExhaustiveMismatch> {
    exhaustive_check_parallel_repeat(program, input, output, table, workers, 1)
}

/// Benchmark entry point: like [`exhaustive_check_parallel_with`], but
/// every worker re-sweeps its shard `repeats` times inside one thread
/// scope before the reduction. Simulation is deterministic, so the
/// result is identical to a single sweep; the point is to amortize the
/// per-scope thread-spawn cost when timing steady-state throughput
/// (`tables threadbench` and the criterion bench use this — a single
/// n = 6 sweep is only 12 batches, far too little work to cover a
/// thread spawn).
///
/// # Panics
/// Same conditions as [`exhaustive_check_parallel`], plus
/// `repeats == 0`.
pub fn exhaustive_check_parallel_repeat<W: SimWord + Send + Sync>(
    program: &Arc<SimProgram>,
    input: &str,
    output: &str,
    table: &WideExpectation<W>,
    workers: usize,
    repeats: usize,
) -> Result<(), ExhaustiveMismatch> {
    assert!(repeats >= 1, "need at least one repetition");
    let shards = shard_ranges(table.batches(), workers);
    let results: Vec<Result<(), ExhaustiveMismatch>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let program = Arc::clone(program);
                scope.spawn(move || {
                    let mut sim = BatchSim::<W>::from_program(program);
                    let mut result = Ok(());
                    for _ in 0..repeats {
                        result = check_batch_range(&mut sim, input, output, table, shard.clone());
                    }
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });
    // Shards ascend, each worker reports its own lowest mismatch, so
    // the first error in shard order is the globally lowest index.
    results.into_iter().collect()
}

/// Multi-threaded [`crate::find_one_hot_violation_batched`]: shards
/// `[0, 2^w)` into contiguous batch-aligned per-worker blocks and
/// returns the lowest input value under which some recorded one-hot
/// bank is not exactly one-hot (`None` when all banks hold everywhere).
/// Deterministic for every worker count, by the same shard-order
/// argument as [`exhaustive_check_parallel`].
///
/// # Panics
/// Panics if `workers == 0`, the port is missing, or the port is 64+
/// bits wide.
pub fn find_one_hot_violation_parallel(
    netlist: &Netlist,
    input: &str,
    workers: usize,
) -> Option<u64> {
    assert!(workers >= 1, "need at least one worker");
    let banks = netlist.one_hot_banks().to_vec();
    if banks.is_empty() {
        return None;
    }
    let total = one_hot_sweep_total(netlist, input);
    let batches = total.div_ceil(LANES as u64) as usize;
    let program = SimProgram::compile_shared(netlist.clone());
    let shards = shard_ranges(batches, workers);
    let results: Vec<Option<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let program = Arc::clone(&program);
                let banks = &banks;
                scope.spawn(move || {
                    let mut sim = BatchSimulator::from_program(program);
                    let start = (shard.start * LANES) as u64;
                    let end = ((shard.end * LANES) as u64).min(total);
                    scan_one_hot_range(&mut sim, banks, input, start, end)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });
    results.into_iter().flatten().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::{exhaustive_check_batched, BatchedExpectation};
    use crate::find_one_hot_violation_batched;
    use hwperm_logic::Builder;

    fn passthrough(bits: usize) -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", bits);
        b.output_bus("y", &x);
        b.finish()
    }

    #[test]
    fn shard_ranges_tile_and_balance() {
        for workers in 1..=9usize {
            for items in [0usize, 1, 3, 12, 64, 65] {
                let shards = shard_ranges(items, workers);
                assert_eq!(shards.len(), workers);
                assert_eq!(shards[0].start, 0);
                assert_eq!(shards[workers - 1].end, items);
                let mut cursor = 0;
                let mut sizes = Vec::new();
                for s in &shards {
                    assert_eq!(s.start, cursor, "contiguous");
                    cursor = s.end;
                    sizes.push(s.len());
                }
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced {sizes:?}");
            }
        }
    }

    #[test]
    fn shard_sizes_match_parallel_plan() {
        // Same balanced-split idiom as hwperm_core::ParallelPlan: block
        // sizes must agree for every (span, workers) pairing.
        use hwperm_bignum::Ubig;
        use hwperm_core::ParallelPlan;
        for workers in [1usize, 2, 3, 7, 8] {
            for items in [0usize, 3, 12, 24] {
                let shards = shard_ranges(items, workers);
                let plan = ParallelPlan::new(4, &Ubig::zero(), &Ubig::from(items as u64), workers);
                for (i, shard) in shards.iter().enumerate() {
                    assert_eq!(
                        shard.len(),
                        plan.block(i).count(),
                        "{items} items x {workers} workers, block {i}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let nl = passthrough(3);
        let expected: Vec<u64> = (0..8).collect();
        let _ = exhaustive_check_parallel(&nl, "x", "y", &expected, 0);
    }

    #[test]
    fn clean_sweep_passes_for_every_worker_count() {
        let nl = passthrough(8); // 256 indices = 4 batches
        let expected: Vec<u64> = (0..256).collect();
        for workers in [1usize, 2, 3, 4, 8, 13] {
            assert_eq!(
                exhaustive_check_parallel(&nl, "x", "y", &expected, workers),
                Ok(()),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn first_mismatch_identical_to_sequential_for_every_worker_count() {
        let nl = passthrough(8);
        // Corrupt several indices across different prospective shards;
        // every worker count must report exactly the sequential witness.
        let mut expected: Vec<u64> = (0..256).collect();
        for &i in &[70usize, 71, 130, 255] {
            expected[i] ^= 0x3;
        }
        let sequential = exhaustive_check_batched(&nl, "x", "y", &expected).unwrap_err();
        assert_eq!(sequential.index, 70);
        for workers in [1usize, 2, 3, 8] {
            let parallel =
                exhaustive_check_parallel(&nl, "x", "y", &expected, workers).unwrap_err();
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }

    #[test]
    fn wide_parallel_witness_matches_sequential_for_every_worker_count() {
        use hwperm_logic::{W256, W512};
        let nl = passthrough(9); // 512 indices: 8 u64 / 2 W256 / 1 W512 batches
        let mut expected: Vec<u64> = (0..512).collect();
        for &i in &[200usize, 201, 400, 511] {
            expected[i] ^= 0x5;
        }
        let sequential = exhaustive_check_batched(&nl, "x", "y", &expected).unwrap_err();
        assert_eq!(sequential.index, 200);
        for workers in [1usize, 2, 3, 8] {
            let w256 = exhaustive_check_parallel_wide::<W256>(&nl, "x", "y", &expected, workers)
                .unwrap_err();
            let w512 = exhaustive_check_parallel_wide::<W512>(&nl, "x", "y", &expected, workers)
                .unwrap_err();
            assert_eq!(w256, sequential, "W256, workers = {workers}");
            assert_eq!(w512, sequential, "W512, workers = {workers}");
        }
    }

    #[test]
    fn wide_parallel_clean_sweep_passes() {
        use hwperm_logic::W512;
        let nl = passthrough(8);
        let expected: Vec<u64> = (0..256).collect();
        for workers in [1usize, 3, 8] {
            assert_eq!(
                exhaustive_check_parallel_wide::<W512>(&nl, "x", "y", &expected, workers),
                Ok(()),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn mismatch_in_late_shard_still_found() {
        let nl = passthrough(8);
        let mut expected: Vec<u64> = (0..256).collect();
        expected[255] = 0; // last lane of the last batch
        for workers in [1usize, 2, 4, 8] {
            let err = exhaustive_check_parallel(&nl, "x", "y", &expected, workers).unwrap_err();
            assert_eq!(err.index, 255, "workers = {workers}");
            assert_eq!(err.got, 255);
            assert_eq!(err.want, 0);
        }
    }

    #[test]
    fn more_workers_than_batches_degrades_gracefully() {
        let nl = passthrough(3); // 8 indices = a single partial batch
        let mut expected: Vec<u64> = (0..8).collect();
        expected[6] = 0;
        let err = exhaustive_check_parallel(&nl, "x", "y", &expected, 8).unwrap_err();
        assert_eq!(err.index, 6);
    }

    #[test]
    fn repeats_return_the_single_sweep_result() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 7);
        b.output_bus("y", &x);
        let nl = b.finish();
        let mut expected: Vec<u64> = (0..100).collect();
        expected[99] = 1;
        let table = BatchedExpectation::new(7, 7, &expected);
        let program = SimProgram::compile_shared(nl);
        let once = exhaustive_check_parallel_with(&program, "x", "y", &table, 3);
        let many = exhaustive_check_parallel_repeat(&program, "x", "y", &table, 3, 5);
        assert_eq!(once, many);
        assert_eq!(once.unwrap_err().index, 99);
    }

    #[test]
    fn one_hot_parallel_matches_sequential() {
        // Truncated decoder: sel in {13, 14, 15} drives zero lines, so
        // the lowest witness is 13 for every worker count.
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 4);
        let lines = b.decoder(&sel, 13);
        b.record_one_hot_bank(&lines);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        assert_eq!(find_one_hot_violation_batched(&nl, "sel"), Some(13));
        for workers in [1usize, 2, 3, 8] {
            assert_eq!(
                find_one_hot_violation_parallel(&nl, "sel", workers),
                Some(13),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn one_hot_parallel_clean_bank_and_no_banks() {
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 4);
        let lines = b.decoder(&sel, 16);
        b.record_one_hot_bank(&lines);
        b.output_bus("hot", &lines);
        let nl = b.finish();
        for workers in [1usize, 2, 8] {
            assert_eq!(find_one_hot_violation_parallel(&nl, "sel", workers), None);
        }
        // No recorded banks: trivially None, even with a missing port
        // untouched (the bank check short-circuits first).
        let plain = passthrough(3);
        assert_eq!(find_one_hot_violation_parallel(&plain, "x", 4), None);
    }
}
