#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fault injection for the compiled simulation tape.
//!
//! Hardware reproductions are only trustworthy if their correctness is
//! measured *under faults*: a single stuck-at gate or flipped register
//! silently breaks the paper's one-hot MUX invariant (Fig. 1) and every
//! permutation downstream of it. This crate provides the fault models
//! and the overlay executors that the campaign engine in
//! `hwperm-verify` and the guarded streams in `hwperm-core` build on:
//!
//! - [`FaultSpec`] — stuck-at-0/1 on any gate output, single-event
//!   upsets on DFF state, and wired-AND bridges between primary inputs;
//! - [`FaultySim`] / [`FaultBatchSim`] — scalar and word-level overlay
//!   executors over a shared `Arc<SimProgram>`; the batched form runs
//!   **one fault per lane** at any `SimWord` width
//!   ([`OverlaySim::batched`]), so a campaign retires 64 (`u64`), 256
//!   (`W256`) or 512 (`W512`) faults per tape walk without ever
//!   mutating the tape;
//! - [`FaultyShuffleSource`] — the Fig. 3 generator with injected
//!   faults, for end-to-end graceful-degradation experiments.

mod overlay;
mod source;
mod spec;

pub use overlay::{FaultBatchSim, FaultySim, OverlaySim};
pub use source::FaultyShuffleSource;
pub use spec::FaultSpec;
