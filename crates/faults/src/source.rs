//! A fault-injected Knuth-shuffle stream: the Fig. 3 generator run
//! through a [`FaultySim`] overlay, exposed as a
//! [`RandomPermSource`] so the guarded-stream layer in `hwperm-core`
//! can be exercised against genuine circuit-level corruption.

use crate::overlay::FaultySim;
use crate::spec::FaultSpec;
use hwperm_circuits::{shuffle_netlist, ShuffleOptions};
use hwperm_core::RandomPermSource;
use hwperm_logic::{Gate, NetId, Netlist, SimProgram};
use hwperm_perm::Permutation;

/// The Fig. 3 Knuth-shuffle generator with injected faults, streaming
/// packed permutation words that may be corrupt.
///
/// Clocking protocol matches `KnuthShuffleCircuit`: the constructor
/// settles once (and fills the pipe for pipelined builds); each draw
/// reads the `perm` output, then clocks and resettles.
///
/// Corrupt draws are observable only through
/// [`RandomPermSource::next_packed_u64`] — the allocation-free path the
/// guarded experiments run on. [`RandomPermSource::next_permutation`]
/// panics on a corrupt draw, because a [`Permutation`] cannot represent
/// a non-permutation.
#[derive(Debug)]
pub struct FaultyShuffleSource {
    sim: FaultySim,
    n: usize,
}

impl FaultyShuffleSource {
    /// A faulted shuffle stream over a freshly built Fig. 3 netlist.
    ///
    /// # Panics
    /// Panics if `n < 2` or `n > 16`, or on malformed `faults`.
    pub fn new(n: usize, options: ShuffleOptions, faults: &[FaultSpec]) -> FaultyShuffleSource {
        assert!(
            Permutation::packed_width(n) <= 64,
            "packed width {} exceeds the u64 fast path (n = {n})",
            Permutation::packed_width(n)
        );
        let program = SimProgram::compile_shared(shuffle_netlist(n, options));
        let mut sim = FaultySim::new(program, faults);
        sim.eval();
        if options.pipelined {
            for _ in 0..n - 1 {
                sim.step();
            }
            sim.eval();
        }
        FaultyShuffleSource { sim, n }
    }

    /// The nets of every element-pipeline register in a pipelined
    /// shuffle netlist: DFFs whose data input is a crossover `Mux`
    /// (as opposed to the LFSR shift registers, whose upsets reseed the
    /// random sequence but still emit valid permutations). Flipping any
    /// of these corrupts an element field of the output word.
    pub fn pipeline_dff_nets(netlist: &Netlist) -> Vec<NetId> {
        netlist
            .gates()
            .iter()
            .enumerate()
            .filter_map(|(i, g)| match *g {
                Gate::Dff { d, .. } => matches!(netlist.gates()[d.index()], Gate::Mux { .. })
                    .then_some(NetId::forged(i as u32)),
                _ => None,
            })
            .collect()
    }
}

impl RandomPermSource for FaultyShuffleSource {
    fn n(&self) -> usize {
        self.n
    }

    fn next_permutation(&mut self) -> Permutation {
        let word = self.next_packed_u64();
        Permutation::unpack(self.n, &hwperm_bignum::Ubig::from(word)).expect(
            "faulty shuffle emitted a non-permutation; draw via next_packed_u64 \
             to observe raw corrupt words",
        )
    }

    fn next_packed_u64(&mut self) -> u64 {
        let word = self.sim.read_output_u64("perm");
        self.sim.step();
        self.sim.eval();
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_circuits::KnuthShuffleCircuit;
    use hwperm_perm::packed_is_permutation_u64;

    const OPTS: ShuffleOptions = ShuffleOptions {
        lfsr_width: 16,
        pipelined: true,
        seed: 5,
    };

    #[test]
    fn fault_free_source_matches_the_healthy_circuit() {
        let mut faulty = FaultyShuffleSource::new(4, OPTS, &[]);
        let mut healthy = KnuthShuffleCircuit::with_options(4, OPTS);
        for i in 0..50 {
            assert_eq!(
                faulty.next_permutation(),
                healthy.next_permutation(),
                "draw {i}"
            );
        }
    }

    #[test]
    fn pipeline_dff_flip_corrupts_every_draw_for_n4() {
        // n = 4 packs 2-bit fields that cover 0..4 exactly, so flipping
        // one pipeline register bit always collides two elements.
        let netlist = shuffle_netlist(4, OPTS);
        let pipeline = FaultyShuffleSource::pipeline_dff_nets(&netlist);
        assert!(
            !pipeline.is_empty(),
            "pipelined build has element registers"
        );
        let fault = FaultSpec::DffFlip { net: pipeline[0] };
        let mut faulty = FaultyShuffleSource::new(4, OPTS, &[fault]);
        for i in 0..100 {
            assert!(
                !packed_is_permutation_u64(4, faulty.next_packed_u64()),
                "draw {i} should be corrupt"
            );
        }
    }

    #[test]
    fn lfsr_dff_flip_stays_a_valid_permutation_stream() {
        // Upsets in the random-number plumbing change *which*
        // permutation comes out, never its validity — the guard-silent
        // fault class.
        let netlist = shuffle_netlist(4, OPTS);
        let pipeline = FaultyShuffleSource::pipeline_dff_nets(&netlist);
        let lfsr_dff = netlist
            .gates()
            .iter()
            .enumerate()
            .find_map(|(i, g)| {
                let net = NetId::forged(i as u32);
                (matches!(g, Gate::Dff { .. }) && !pipeline.contains(&net)).then_some(net)
            })
            .expect("shuffle has LFSR registers");
        let mut faulty = FaultyShuffleSource::new(4, OPTS, &[FaultSpec::DffFlip { net: lfsr_dff }]);
        let mut healthy = KnuthShuffleCircuit::with_options(4, OPTS);
        let mut diverged = false;
        for _ in 0..100 {
            let word = faulty.next_packed_u64();
            assert!(packed_is_permutation_u64(4, word));
            diverged |= word != healthy.next_permutation().pack_u64();
        }
        assert!(diverged, "the upset must at least perturb the sequence");
    }
}
