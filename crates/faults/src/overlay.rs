//! Non-destructive fault overlays on a shared simulation tape.
//!
//! An [`OverlaySim`] owns only a value array; the tape itself stays an
//! immutable `Arc<SimProgram>` shared with every healthy simulator and
//! every other overlay. Faults are applied *around* the tape:
//!
//! - stuck-at faults on combinational nets interpose on the wave by
//!   segmented execution (`exec_range` up to the faulted op, force its
//!   output slot, continue) — the netlist is never rewritten;
//! - stuck-at faults on state nets (inputs, constants, DFF outputs)
//!   force the state slot before every settle;
//! - DFF flips invert the register slot after every capture edge;
//! - input bridges wire-AND two primary-input slots before every
//!   settle.
//!
//! The executor is generic over [`SimWord`], with per-lane fault masks:
//! [`FaultySim`] (scalar, every fault on the one lane) and the batched
//! overlays built by [`OverlaySim::batched`] (**one fault per lane**,
//! [`SimWord::LANES`] lanes — 64 for the [`FaultBatchSim`] alias, 256
//! or 512 for the wide words) share the same force/flip/bridge
//! machinery, so a campaign sweeps up to `LANES` distinct faults per
//! tape walk.

use crate::spec::{resolve, FaultSpec, ResolvedFault};
use hwperm_logic::{NetId, SimProgram, SimWord};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Force applied to a combinational op's output slot, mid-wave.
#[derive(Debug, Clone, Copy)]
struct CombForce<W> {
    op: usize,
    slot: usize,
    mask: W,
    /// Forced bits, pre-masked (`value ⊆ mask`).
    value: W,
}

/// Force applied to a state slot before every settle.
#[derive(Debug, Clone, Copy)]
struct StateForce<W> {
    slot: usize,
    mask: W,
    value: W,
}

/// Register-slot inversion applied after every capture edge.
#[derive(Debug, Clone, Copy)]
struct Flip<W> {
    slot: usize,
    mask: W,
}

/// Wired-AND of two input slots, applied before every settle.
#[derive(Debug, Clone, Copy)]
struct Bridge<W> {
    a_slot: usize,
    b_slot: usize,
    mask: W,
}

/// A fault-overlay executor over a shared tape. See the module docs;
/// use the [`FaultySim`] / [`FaultBatchSim`] aliases to construct one.
#[derive(Debug)]
pub struct OverlaySim<W: SimWord> {
    program: Arc<SimProgram>,
    values: Vec<W>,
    scratch: Vec<W>,
    /// Sorted by op (one merged entry per faulted op), so the eval loop
    /// walks ascending contiguous segments as `exec_range` requires.
    comb: Vec<CombForce<W>>,
    state: Vec<StateForce<W>>,
    flips: Vec<Flip<W>>,
    bridges: Vec<Bridge<W>>,
}

/// Builds the merged force tables from `(fault, lane mask)` pairs.
/// Forces on the same slot merge mask-wise; where scalar masks collide,
/// the later fault wins (documented on [`FaultySim::new`]).
fn build<W: SimWord>(
    program: Arc<SimProgram>,
    faults: impl Iterator<Item = (FaultSpec, W)>,
) -> OverlaySim<W> {
    let mut comb: BTreeMap<usize, CombForce<W>> = BTreeMap::new();
    let mut state: BTreeMap<usize, StateForce<W>> = BTreeMap::new();
    let mut flips: BTreeMap<usize, Flip<W>> = BTreeMap::new();
    let mut bridges: Vec<Bridge<W>> = Vec::new();
    let merge = |mask: &mut W, value: &mut W, m: W, v: bool| {
        *mask = *mask | m;
        *value = (*value & !m) | (W::splat(v) & m);
    };
    for (fault, m) in faults {
        match resolve(&program, &fault) {
            ResolvedFault::CombForce { op, slot, value } => {
                let e = comb.entry(op).or_insert(CombForce {
                    op,
                    slot,
                    mask: W::splat(false),
                    value: W::splat(false),
                });
                merge(&mut e.mask, &mut e.value, m, value);
            }
            ResolvedFault::StateForce { slot, value } => {
                let e = state.entry(slot).or_insert(StateForce {
                    slot,
                    mask: W::splat(false),
                    value: W::splat(false),
                });
                merge(&mut e.mask, &mut e.value, m, value);
            }
            ResolvedFault::DffFlip { slot } => {
                let e = flips.entry(slot).or_insert(Flip {
                    slot,
                    mask: W::splat(false),
                });
                e.mask = e.mask | m;
            }
            ResolvedFault::InputBridge { a_slot, b_slot } => {
                bridges.push(Bridge {
                    a_slot,
                    b_slot,
                    mask: m,
                });
            }
        }
    }
    let values = program.initial_values();
    OverlaySim {
        program,
        values,
        scratch: Vec::new(),
        comb: comb.into_values().collect(),
        state: state.into_values().collect(),
        flips: flips.into_values().collect(),
        bridges,
    }
}

impl<W: SimWord> OverlaySim<W> {
    /// A batched overlay with fault `k` assigned to lane `k` — the
    /// width-generic constructor behind [`FaultBatchSim::new`]. Lanes
    /// beyond `faults.len()` are fault-free (useful as a golden lane).
    ///
    /// # Panics
    /// Panics if `faults.len() > W::LANES` or on malformed specs.
    pub fn batched(program: Arc<SimProgram>, faults: &[FaultSpec]) -> OverlaySim<W> {
        assert!(
            faults.len() <= W::LANES,
            "{} faults exceed the {}-lane batch width",
            faults.len(),
            W::LANES
        );
        build(
            program,
            faults.iter().enumerate().map(|(k, &f)| (f, W::lane_one(k))),
        )
    }

    /// The shared tape this overlay executes.
    pub fn program(&self) -> &Arc<SimProgram> {
        &self.program
    }

    /// Drives every lane of the named input port with the same `value`
    /// (the campaign pattern: one index across all faults).
    ///
    /// # Panics
    /// Panics if the port does not exist or `value` does not fit it.
    pub fn set_input_all_lanes_u64(&mut self, name: &str, value: u64) {
        let program = Arc::clone(&self.program);
        let slots = program.input_slots(name);
        assert!(
            slots.len() >= 64 || value >> slots.len() == 0,
            "value {value:#x} does not fit input port {name:?} ({} bits)",
            slots.len()
        );
        for (bit, &slot) in slots.iter().enumerate() {
            self.values[slot as usize] = W::splat((value >> bit) & 1 == 1);
        }
    }

    /// Drives the named input port bit-by-bit with prepacked lane
    /// words, one word per port bit (the `WideExpectation` layout).
    ///
    /// # Panics
    /// Panics if the port does not exist or `words` has the wrong width.
    pub fn set_input_words(&mut self, name: &str, words: &[W]) {
        let program = Arc::clone(&self.program);
        let slots = program.input_slots(name);
        assert!(
            words.len() == slots.len(),
            "{} words do not match input port {name:?} ({} bits)",
            words.len(),
            slots.len()
        );
        for (&slot, &w) in slots.iter().zip(words) {
            self.values[slot as usize] = w;
        }
    }

    /// Reads the named output port as one lane word per port bit.
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn read_output_words(&self, name: &str) -> Vec<W> {
        self.program
            .output_slots(name)
            .iter()
            .map(|&slot| self.values[slot as usize])
            .collect()
    }

    /// Extracts one lane of the named output port as a `u64`
    /// (LSB-first).
    ///
    /// # Panics
    /// Panics if the port does not exist, is wider than 64 bits, or
    /// `lane >= W::LANES`.
    pub fn read_output_lane_u64(&self, name: &str, lane: usize) -> u64 {
        assert!(
            lane < W::LANES,
            "lane {lane} out of range for the {}-lane batch",
            W::LANES
        );
        let slots = self.program.output_slots(name);
        assert!(
            slots.len() <= 64,
            "output port {name:?} ({} bits) does not fit a u64",
            slots.len()
        );
        slots.iter().enumerate().fold(0u64, |acc, (bit, &slot)| {
            acc | ((self.values[slot as usize].lane(lane) as u64) << bit)
        })
    }

    /// Bridge shorts and state-slot forces, applied before the wave.
    fn apply_pre(&mut self) {
        for br in &self.bridges {
            let and = (self.values[br.a_slot] & self.values[br.b_slot]) & br.mask;
            self.values[br.a_slot] = (self.values[br.a_slot] & !br.mask) | and;
            self.values[br.b_slot] = (self.values[br.b_slot] & !br.mask) | and;
        }
        for sf in &self.state {
            self.values[sf.slot] = (self.values[sf.slot] & !sf.mask) | sf.value;
        }
    }

    /// Combinational settle under the fault overlay. Note that bridge
    /// faults overwrite the bridged input slots, so drive input ports
    /// before *every* `eval`, as a hardware testbench would.
    pub fn eval(&mut self) {
        self.apply_pre();
        let mut start = 0;
        for cf in &self.comb {
            self.program.exec_range(&mut self.values, start..cf.op + 1);
            self.values[cf.slot] = (self.values[cf.slot] & !cf.mask) | cf.value;
            start = cf.op + 1;
        }
        self.program
            .exec_range(&mut self.values, start..self.program.op_count());
    }

    /// One clock: settle, capture every DFF, then invert flipped
    /// register slots (the upset rides the capture path, so it recurs
    /// on every edge).
    pub fn step(&mut self) {
        self.eval();
        self.program.latch(&mut self.values, &mut self.scratch);
        for fl in &self.flips {
            self.values[fl.slot] = self.values[fl.slot] ^ fl.mask;
        }
    }

    /// Resets every DFF slot to its init value. Flip faults do not
    /// apply at reset (the upset model corrupts captures, not the
    /// asynchronous reset network).
    pub fn reset(&mut self) {
        self.program.reset(&mut self.values);
    }

    /// The settled value of a net.
    pub fn probe(&self, net: NetId) -> W {
        self.values[self.program.slot(net)]
    }
}

/// Scalar fault overlay: every fault applies to the single lane. Where
/// two stuck-at faults force the same net, the later one in the spec
/// list wins.
pub type FaultySim = OverlaySim<bool>;

impl OverlaySim<bool> {
    /// A scalar overlay applying all of `faults` at once.
    ///
    /// # Panics
    /// Panics on malformed specs (see [`FaultSpec`]).
    pub fn new(program: Arc<SimProgram>, faults: &[FaultSpec]) -> FaultySim {
        build(program, faults.iter().map(|&f| (f, true)))
    }

    /// Drives the named input port with the low bits of `value`
    /// (LSB-first, like the plain simulators).
    ///
    /// # Panics
    /// Panics if the port does not exist or `value` does not fit it.
    pub fn set_input_u64(&mut self, name: &str, value: u64) {
        let program = Arc::clone(&self.program);
        let slots = program.input_slots(name);
        assert!(
            slots.len() >= 64 || value >> slots.len() == 0,
            "value {value:#x} does not fit input port {name:?} ({} bits)",
            slots.len()
        );
        for (bit, &slot) in slots.iter().enumerate() {
            self.values[slot as usize] = (value >> bit) & 1 == 1;
        }
    }

    /// Reads the named output port as a `u64` (LSB-first).
    ///
    /// # Panics
    /// Panics if the port does not exist or is wider than 64 bits.
    pub fn read_output_u64(&self, name: &str) -> u64 {
        let slots = self.program.output_slots(name);
        assert!(
            slots.len() <= 64,
            "output port {name:?} ({} bits) does not fit a u64",
            slots.len()
        );
        slots.iter().enumerate().fold(0u64, |acc, (bit, &slot)| {
            acc | (u64::from(self.values[slot as usize]) << bit)
        })
    }
}

/// 64-lane fault overlay: lane `k` carries fault `k` alone, so one tape
/// walk evaluates up to 64 distinct single faults side by side. The
/// `u64` instantiation of the width-generic batched overlay — use
/// `OverlaySim::<W256>::batched` / `OverlaySim::<W512>::batched` for
/// 256 or 512 faults per walk.
pub type FaultBatchSim = OverlaySim<u64>;

impl OverlaySim<u64> {
    /// A 64-lane batched overlay with fault `k` assigned to lane `k` —
    /// [`OverlaySim::batched`] at `W = u64`.
    ///
    /// # Panics
    /// Panics if `faults.len() > 64` or on malformed specs.
    pub fn new(program: Arc<SimProgram>, faults: &[FaultSpec]) -> FaultBatchSim {
        Self::batched(program, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Builder;

    /// 4-bit adder with a carry-out — pure combinational.
    fn adder() -> Arc<SimProgram> {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        SimProgram::compile_shared(b.finish())
    }

    fn adder_sum(program: &Arc<SimProgram>, faults: &[FaultSpec], x: u64, y: u64) -> u64 {
        let mut sim = FaultySim::new(Arc::clone(program), faults);
        sim.set_input_u64("x", x);
        sim.set_input_u64("y", y);
        sim.eval();
        sim.read_output_u64("s") | (sim.read_output_u64("c") << 4)
    }

    #[test]
    fn fault_free_overlay_matches_plain_tape() {
        let program = adder();
        for (x, y) in [(0u64, 0u64), (3, 5), (9, 9), (15, 15)] {
            assert_eq!(adder_sum(&program, &[], x, y), x + y, "{x} + {y}");
        }
    }

    #[test]
    fn input_stuck_at_forces_the_state_slot() {
        let program = adder();
        // x's bit 0 is net 0; stuck-at-1 turns x = 0b0000 into 0b0001.
        let fault = FaultSpec::StuckAt {
            net: NetId::forged(0),
            value: true,
        };
        assert_eq!(adder_sum(&program, &[fault], 0, 0), 1);
        assert_eq!(
            adder_sum(&program, &[fault], 1, 0),
            1,
            "already set: no change"
        );
    }

    #[test]
    fn comb_stuck_at_interposes_mid_wave() {
        let program = adder();
        // Find the net feeding sum bit 0 (an XOR at some comb slot) via
        // the output port: force it to 1 and expect bit 0 set always.
        let s0_slot = program.output_slots("s")[0] as usize;
        let net = (0..program.netlist().len())
            .map(|i| NetId::forged(i as u32))
            .find(|&n| program.slot(n) == s0_slot)
            .unwrap();
        let fault = FaultSpec::StuckAt { net, value: true };
        assert_eq!(adder_sum(&program, &[fault], 0, 0), 1);
        assert_eq!(adder_sum(&program, &[fault], 2, 2), 5);
        assert_eq!(
            adder_sum(&program, &[fault], 1, 0),
            1,
            "masked when already 1"
        );
    }

    #[test]
    fn input_bridge_wire_ands_both_nets() {
        let program = adder();
        // Bridge x bit 0 (net 0) with y bit 0 (net 4).
        let fault = FaultSpec::InputBridge {
            a: NetId::forged(0),
            b: NetId::forged(4),
        };
        // 1 + 0: the AND pulls both low — sum 0.
        assert_eq!(adder_sum(&program, &[fault], 1, 0), 0);
        // 1 + 1: both stay high — unchanged.
        assert_eq!(adder_sum(&program, &[fault], 1, 1), 2);
    }

    #[test]
    fn dff_flip_inverts_after_every_capture() {
        // One DFF shifting its input; flip inverts the captured bit.
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let q = b.dff(x[0], false);
        b.output_bus("y", &[q]);
        let program = SimProgram::compile_shared(b.finish());
        let dff_net = NetId::forged(1);
        let mut sim = FaultySim::new(Arc::clone(&program), &[FaultSpec::DffFlip { net: dff_net }]);
        sim.set_input_u64("x", 1);
        sim.step();
        sim.eval();
        assert_eq!(sim.read_output_u64("y"), 0, "captured 1, flipped to 0");
        sim.set_input_u64("x", 0);
        sim.step();
        sim.eval();
        assert_eq!(sim.read_output_u64("y"), 1, "captured 0, flipped to 1");
        sim.reset();
        assert_eq!(sim.read_output_u64("y"), 0, "reset is not flipped");
    }

    #[test]
    fn batched_lanes_match_scalar_single_fault_runs() {
        let program = adder();
        let faults = [
            FaultSpec::StuckAt {
                net: NetId::forged(0),
                value: true,
            },
            FaultSpec::StuckAt {
                net: NetId::forged(5),
                value: false,
            },
            FaultSpec::InputBridge {
                a: NetId::forged(1),
                b: NetId::forged(5),
            },
        ];
        let mut batch = FaultBatchSim::new(Arc::clone(&program), &faults);
        for (x, y) in [(0u64, 0u64), (5, 10), (15, 1), (7, 7)] {
            batch.set_input_all_lanes_u64("x", x);
            batch.set_input_all_lanes_u64("y", y);
            batch.eval();
            for (k, fault) in faults.iter().enumerate() {
                let got =
                    batch.read_output_lane_u64("s", k) | (batch.read_output_lane_u64("c", k) << 4);
                assert_eq!(
                    got,
                    adder_sum(&program, &[*fault], x, y),
                    "lane {k} ({fault}), x = {x}, y = {y}"
                );
            }
            // Unfaulted lane 3 stays golden.
            let golden =
                batch.read_output_lane_u64("s", 3) | (batch.read_output_lane_u64("c", 3) << 4);
            assert_eq!(golden, x + y, "golden lane, x = {x}, y = {y}");
        }
    }

    #[test]
    fn later_scalar_fault_wins_on_the_same_net() {
        let program = adder();
        let net = NetId::forged(0);
        let sa0 = FaultSpec::StuckAt { net, value: false };
        let sa1 = FaultSpec::StuckAt { net, value: true };
        assert_eq!(adder_sum(&program, &[sa0, sa1], 0, 0), 1);
        assert_eq!(adder_sum(&program, &[sa1, sa0], 1, 0), 0);
    }

    #[test]
    #[should_panic(expected = "65 faults exceed the 64-lane batch width")]
    fn batch_width_overflow_message_pinned() {
        let program = adder();
        let faults: Vec<FaultSpec> = (0..65)
            .map(|_| FaultSpec::StuckAt {
                net: NetId::forged(0),
                value: false,
            })
            .collect();
        let _ = FaultBatchSim::new(program, &faults);
    }

    #[test]
    fn wide_batched_lanes_match_scalar_past_lane_64() {
        use hwperm_logic::W256;
        // More faults than any u64 batch can hold: the whole stuck-at
        // universe of an 8-bit adder (2 faults per net), one W256 lane
        // each, cross-checked against one scalar overlay per fault.
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        let program = SimProgram::compile_shared(b.finish());
        let nets = program.netlist().len();
        let faults: Vec<FaultSpec> = (0..nets as u32)
            .flat_map(|i| {
                [false, true].map(|value| FaultSpec::StuckAt {
                    net: NetId::forged(i),
                    value,
                })
            })
            .collect();
        assert!(faults.len() > 64, "universe must overflow a u64 batch");
        let mut batch = OverlaySim::<W256>::batched(Arc::clone(&program), &faults);
        for (x, y) in [(0u64, 0u64), (137, 66), (255, 255)] {
            batch.set_input_all_lanes_u64("x", x);
            batch.set_input_all_lanes_u64("y", y);
            batch.eval();
            for (k, fault) in faults.iter().enumerate() {
                let got =
                    batch.read_output_lane_u64("s", k) | (batch.read_output_lane_u64("c", k) << 8);
                let mut scalar = FaultySim::new(Arc::clone(&program), &[*fault]);
                scalar.set_input_u64("x", x);
                scalar.set_input_u64("y", y);
                scalar.eval();
                let want = scalar.read_output_u64("s") | (scalar.read_output_u64("c") << 8);
                assert_eq!(got, want, "lane {k} ({fault}), x = {x}, y = {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "257 faults exceed the 256-lane batch width")]
    fn wide_batch_overflow_names_the_wide_width() {
        use hwperm_logic::W256;
        let program = adder();
        let faults: Vec<FaultSpec> = (0..257)
            .map(|_| FaultSpec::StuckAt {
                net: NetId::forged(0),
                value: false,
            })
            .collect();
        let _ = OverlaySim::<W256>::batched(program, &faults);
    }
}
