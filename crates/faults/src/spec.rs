//! Fault models and their resolution against a compiled tape.

use hwperm_logic::{Gate, NetId, SimProgram};
use std::fmt;

/// One injectable hardware fault, named by nets of the source netlist.
///
/// The three models cover the classic single-fault menagerie:
///
/// - [`FaultSpec::StuckAt`] — a gate output (any net: combinational,
///   input, constant, or DFF) permanently reads 0 or 1;
/// - [`FaultSpec::DffFlip`] — a single-event upset on a register: the
///   DFF's state bit is inverted after every capture edge;
/// - [`FaultSpec::InputBridge`] — two primary-input nets are shorted
///   and both read the wired-AND of the driven values.
///
/// Bridges are restricted to primary inputs because the tape executes
/// each level exactly once: a mid-tape bridge would need re-evaluation
/// of consumers scheduled before the bridged pair settles, which the
/// single-pass levelized wave cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Net `net` permanently drives `value`.
    StuckAt {
        /// The faulted net (any gate output).
        net: NetId,
        /// The value the net is stuck at.
        value: bool,
    },
    /// The DFF whose output is `net` inverts its state after every
    /// capture edge (a persistent upset on the capture path).
    DffFlip {
        /// The faulted net (must be a DFF output).
        net: NetId,
    },
    /// Primary inputs `a` and `b` are shorted wired-AND.
    InputBridge {
        /// First bridged input net.
        a: NetId,
        /// Second bridged input net (distinct from `a`).
        b: NetId,
    },
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultSpec::StuckAt { net, value } => {
                write!(f, "stuck-at-{} on net {}", u8::from(value), net.index())
            }
            FaultSpec::DffFlip { net } => write!(f, "dff-flip on net {}", net.index()),
            FaultSpec::InputBridge { a, b } => {
                write!(
                    f,
                    "input-bridge between nets {} and {}",
                    a.index(),
                    b.index()
                )
            }
        }
    }
}

/// A [`FaultSpec`] translated into tape coordinates, ready for the
/// overlay executors.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResolvedFault {
    /// Force a combinational op's output slot right after the op runs.
    CombForce {
        /// Tape op position (`slot - comb_base`).
        op: usize,
        /// The op's output slot.
        slot: usize,
        /// Forced value.
        value: bool,
    },
    /// Force a state slot (input / constant / DFF output) before every
    /// combinational settle.
    StateForce {
        /// The state slot.
        slot: usize,
        /// Forced value.
        value: bool,
    },
    /// Invert a DFF state slot after every capture edge.
    DffFlip {
        /// The DFF's `q` state slot.
        slot: usize,
    },
    /// Wired-AND two primary-input state slots before every settle.
    InputBridge {
        /// First bridged input slot.
        a_slot: usize,
        /// Second bridged input slot.
        b_slot: usize,
    },
}

/// Checks that `net` names a gate of `program`'s netlist.
fn in_range(program: &SimProgram, net: NetId) -> usize {
    let len = program.netlist().len();
    assert!(
        net.index() < len,
        "fault targets out-of-range net {} (netlist has {len} nets)",
        net.index()
    );
    net.index()
}

/// Resolves a fault against the tape, panicking on malformed specs.
///
/// # Panics
/// Panics if any referenced net is out of range, if a [`FaultSpec::DffFlip`]
/// targets a non-DFF net, if a [`FaultSpec::InputBridge`] endpoint is not a
/// primary input, or if a bridge shorts a net to itself.
pub(crate) fn resolve(program: &SimProgram, fault: &FaultSpec) -> ResolvedFault {
    match *fault {
        FaultSpec::StuckAt { net, value } => {
            in_range(program, net);
            let slot = program.slot(net);
            let base = program.comb_base();
            if slot >= base {
                ResolvedFault::CombForce {
                    op: slot - base,
                    slot,
                    value,
                }
            } else {
                ResolvedFault::StateForce { slot, value }
            }
        }
        FaultSpec::DffFlip { net } => {
            let idx = in_range(program, net);
            assert!(
                program.is_dff_net(net),
                "dff-flip fault targets net {idx}, which is not a DFF output"
            );
            ResolvedFault::DffFlip {
                slot: program.slot(net),
            }
        }
        FaultSpec::InputBridge { a, b } => {
            let ai = in_range(program, a);
            let bi = in_range(program, b);
            assert!(ai != bi, "input-bridge fault shorts net {ai} to itself");
            for (what, idx) in [(a, ai), (b, bi)] {
                assert!(
                    matches!(program.netlist().gates()[idx], Gate::Input),
                    "input-bridge fault targets net {}, which is not a primary input",
                    what.index()
                );
            }
            ResolvedFault::InputBridge {
                a_slot: program.slot(a),
                b_slot: program.slot(b),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Builder;
    use std::sync::Arc;

    fn small_program() -> Arc<SimProgram> {
        // net 0,1: inputs; net 2: AND; net 3: DFF.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let g = b.and(x[0], x[1]);
        let q = b.dff(g, false);
        b.output_bus("y", &[q]);
        SimProgram::compile_shared(b.finish())
    }

    #[test]
    fn display_names_the_model_and_nets() {
        assert_eq!(
            FaultSpec::StuckAt {
                net: NetId::forged(17),
                value: false
            }
            .to_string(),
            "stuck-at-0 on net 17"
        );
        assert_eq!(
            FaultSpec::DffFlip {
                net: NetId::forged(3)
            }
            .to_string(),
            "dff-flip on net 3"
        );
        assert_eq!(
            FaultSpec::InputBridge {
                a: NetId::forged(0),
                b: NetId::forged(1)
            }
            .to_string(),
            "input-bridge between nets 0 and 1"
        );
    }

    #[test]
    fn resolves_each_model_to_tape_coordinates() {
        let p = small_program();
        assert!(matches!(
            resolve(
                &p,
                &FaultSpec::StuckAt {
                    net: NetId::forged(2),
                    value: true
                }
            ),
            ResolvedFault::CombForce {
                op: 0,
                value: true,
                ..
            }
        ));
        assert!(matches!(
            resolve(
                &p,
                &FaultSpec::StuckAt {
                    net: NetId::forged(0),
                    value: false
                }
            ),
            ResolvedFault::StateForce { value: false, .. }
        ));
        assert!(matches!(
            resolve(
                &p,
                &FaultSpec::DffFlip {
                    net: NetId::forged(3)
                }
            ),
            ResolvedFault::DffFlip { .. }
        ));
        assert!(matches!(
            resolve(
                &p,
                &FaultSpec::InputBridge {
                    a: NetId::forged(0),
                    b: NetId::forged(1)
                }
            ),
            ResolvedFault::InputBridge { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "fault targets out-of-range net 99 (netlist has 4 nets)")]
    fn stuck_at_out_of_range_net_message_pinned() {
        resolve(
            &small_program(),
            &FaultSpec::StuckAt {
                net: NetId::forged(99),
                value: false,
            },
        );
    }

    #[test]
    #[should_panic(expected = "dff-flip fault targets net 2, which is not a DFF output")]
    fn dff_flip_on_non_dff_net_message_pinned() {
        resolve(
            &small_program(),
            &FaultSpec::DffFlip {
                net: NetId::forged(2),
            },
        );
    }

    #[test]
    #[should_panic(expected = "input-bridge fault targets net 3, which is not a primary input")]
    fn bridge_on_non_input_net_message_pinned() {
        resolve(
            &small_program(),
            &FaultSpec::InputBridge {
                a: NetId::forged(0),
                b: NetId::forged(3),
            },
        );
    }

    #[test]
    #[should_panic(expected = "input-bridge fault shorts net 1 to itself")]
    fn bridge_to_self_message_pinned() {
        resolve(
            &small_program(),
            &FaultSpec::InputBridge {
                a: NetId::forged(1),
                b: NetId::forged(1),
            },
        );
    }
}
