//! Differential property tests for the fault overlay: with an empty
//! fault list, [`FaultySim`] and [`FaultBatchSim`] must be
//! bit-identical to the bare scalar [`Simulator`] on the same netlist
//! — for every one of the nine circuit families the lint driver
//! covers, combinational and sequential alike. The overlay's forcing
//! masks are all zero in this configuration, so any divergence means
//! the overlay machinery itself (segmented execution, latch order,
//! reset) disagrees with the reference tape.

use hwperm_bignum::Ubig;
use hwperm_circuits::{
    converter_netlist, shuffle_netlist, ConverterOptions, IndexToCombinationConverter,
    IndexToVariationConverter, PermToIndexConverter, RandomIndexGenerator, ShuffleOptions,
    SortingNetwork,
};
use hwperm_faults::{FaultBatchSim, FaultySim};
use hwperm_logic::{Netlist, SimProgram, Simulator};
use proptest::prelude::*;

/// The same nine families the lint driver and the batch-equivalence
/// proptests pin, so fault-free overlay parity is checked against the
/// exact netlists the campaign engine will later target.
const FAMILIES: [&str; 9] = [
    "converter",
    "converter-pipelined",
    "shuffle",
    "shuffle-pipelined",
    "rank",
    "combination",
    "variation",
    "sort",
    "random-index",
];

/// Same derived defaults as the CLI's lint driver: combination and
/// variation take k = ⌈n/2⌉, sorter keys are wide enough for n
/// distinct values.
fn family_netlist(family: &str, n: usize) -> Netlist {
    let k = n.div_ceil(2);
    let key_width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(2);
    match family {
        "converter" => converter_netlist(n, ConverterOptions::default()),
        "converter-pipelined" => converter_netlist(
            n,
            ConverterOptions {
                pipelined: true,
                perm_input_port: false,
            },
        ),
        "shuffle" => shuffle_netlist(n, ShuffleOptions::default()),
        "shuffle-pipelined" => shuffle_netlist(
            n,
            ShuffleOptions {
                pipelined: true,
                ..ShuffleOptions::default()
            },
        ),
        "rank" => PermToIndexConverter::new(n).netlist().clone(),
        "combination" => IndexToCombinationConverter::new(n, k).netlist().clone(),
        "variation" => IndexToVariationConverter::new(n, k).netlist().clone(),
        "sort" => SortingNetwork::new(n, key_width).netlist().clone(),
        "random-index" => RandomIndexGenerator::new(n, 0x5eed).netlist().clone(),
        other => panic!("unknown family {other:?}"),
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A random `width`-bit word. Arbitrary patterns are fair game: the
/// property is overlay/reference equivalence, not functional
/// correctness, so e.g. the rank family's `perm` port may legitimately
/// see non-permutations.
fn rand_word(rng: &mut u64, width: usize) -> u64 {
    assert!(width <= 64, "family port too wide for the u64 overlay IO");
    let word = xorshift(rng);
    if width == 64 {
        word
    } else {
        word & ((1u64 << width) - 1)
    }
}

/// One cycle's worth of input data: for each input port, one u64 word.
fn random_cycle(netlist: &Netlist, rng: &mut u64) -> Vec<(String, u64)> {
    netlist
        .input_ports()
        .iter()
        .map(|p| (p.name.clone(), rand_word(rng, p.nets.len())))
        .collect()
}

fn ubig_of(word: u64) -> Ubig {
    Ubig::from(word)
}

fn ubig_to_u64(v: &Ubig) -> u64 {
    v.to_u64().expect("family output port wider than 64 bits")
}

/// Combinational check: one fault-free scalar overlay eval and one
/// fault-free batched overlay eval (same word broadcast to all 64
/// lanes) against the reference simulator.
fn assert_eval_parity(family: &str, netlist: &Netlist, seed: u64) {
    let mut rng = seed | 1;
    let cycle = random_cycle(netlist, &mut rng);
    let program = SimProgram::compile_shared(netlist.clone());

    let mut reference = Simulator::new(netlist.clone());
    let mut scalar = FaultySim::new(program.clone(), &[]);
    let mut batch = FaultBatchSim::new(program.clone(), &[]);
    for (name, word) in &cycle {
        reference.set_input(name, &ubig_of(*word));
        scalar.set_input_u64(name, *word);
        batch.set_input_all_lanes_u64(name, *word);
    }
    reference.eval();
    scalar.eval();
    batch.eval();

    for port in netlist.output_ports() {
        let want = ubig_to_u64(&reference.read_output(&port.name));
        assert_eq!(
            scalar.read_output_u64(&port.name),
            want,
            "{family}: scalar overlay diverges on output {:?}",
            port.name
        );
        for lane in 0..64 {
            assert_eq!(
                batch.read_output_lane_u64(&port.name, lane),
                want,
                "{family}: batched overlay diverges on output {:?} lane {lane}",
                port.name
            );
        }
    }
}

/// Sequential check: a multi-cycle step schedule run in lockstep on
/// the reference simulator and both fault-free overlays; every cycle's
/// post-step outputs must agree, and a reset must bring all three back
/// into agreement from the power-on state.
fn assert_step_parity(family: &str, netlist: &Netlist, cycles: usize, seed: u64) {
    let mut rng = seed | 1;
    let schedule: Vec<Vec<(String, u64)>> = (0..cycles)
        .map(|_| random_cycle(netlist, &mut rng))
        .collect();
    let program = SimProgram::compile_shared(netlist.clone());

    let mut reference = Simulator::new(netlist.clone());
    let mut scalar = FaultySim::new(program.clone(), &[]);
    let mut batch = FaultBatchSim::new(program.clone(), &[]);

    for round in 0..2 {
        for (c, cycle) in schedule.iter().enumerate() {
            for (name, word) in cycle {
                reference.set_input(name, &ubig_of(*word));
                scalar.set_input_u64(name, *word);
                batch.set_input_all_lanes_u64(name, *word);
            }
            reference.step();
            reference.eval();
            scalar.step();
            scalar.eval();
            batch.step();
            batch.eval();
            for port in netlist.output_ports() {
                let want = ubig_to_u64(&reference.read_output(&port.name));
                assert_eq!(
                    scalar.read_output_u64(&port.name),
                    want,
                    "{family}: scalar overlay diverges on {:?} at cycle {c} (round {round})",
                    port.name
                );
                assert_eq!(
                    batch.read_output_lane_u64(&port.name, 63),
                    want,
                    "{family}: batched overlay diverges on {:?} at cycle {c} (round {round})",
                    port.name
                );
            }
        }
        // Round 1 replays the same schedule after a reset: the overlay
        // reset path must restore the same power-on state the
        // reference simulator starts from.
        reference.reset();
        scalar.reset();
        batch.reset();
    }
}

proptest! {
    // Each case covers all nine families; the sequential families run
    // a 4-cycle schedule twice (pre- and post-reset).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A fault-free overlay is bit-identical to the bare tape for all
    /// nine circuit families.
    #[test]
    fn fault_free_overlay_matches_reference(n in 2usize..=5, seed in any::<u64>()) {
        for family in FAMILIES {
            let netlist = family_netlist(family, n);
            if netlist.register_count() == 0 {
                assert_eval_parity(family, &netlist, seed);
            } else {
                assert_step_parity(family, &netlist, 4, seed);
            }
        }
    }
}
