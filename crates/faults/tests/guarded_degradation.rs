//! End-to-end acceptance: a pipelined Fig. 3 shuffle circuit with a
//! single-event upset on one element-pipeline register, wrapped in a
//! [`GuardedPermSource`], must (a) detect the corruption on every draw
//! and (b) still complete the paper's derangement experiment with
//! correct statistics by gracefully degrading to the software
//! unranker. This is the full robustness stack in one test:
//! fault overlay → faulted circuit stream → guard → Monte Carlo.

use hwperm_circuits::{shuffle_netlist, ShuffleOptions};
use hwperm_core::{
    derangement_experiment_packed, FaultPolicy, GuardedPermSource, RandomPermSource,
};
use hwperm_faults::{FaultSpec, FaultyShuffleSource};
use hwperm_perm::packed_is_permutation_u64;

const N: usize = 4;
const OPTS: ShuffleOptions = ShuffleOptions {
    lfsr_width: 16,
    pipelined: true,
    seed: 0xD15EA5E,
};

/// A pipelined shuffle source with a capture-path upset on the first
/// element-pipeline register. For n = 4 the 2-bit element fields cover
/// 0..4 exactly, so the flip always duplicates an element: every draw
/// is corrupt.
fn upset_source() -> FaultyShuffleSource {
    let netlist = shuffle_netlist(N, OPTS);
    let dffs = FaultyShuffleSource::pipeline_dff_nets(&netlist);
    assert!(
        !dffs.is_empty(),
        "pipelined shuffle netlist has no element-pipeline registers"
    );
    FaultyShuffleSource::new(N, OPTS, &[FaultSpec::DffFlip { net: dffs[0] }])
}

#[test]
fn upset_pipeline_register_corrupts_the_raw_stream() {
    let mut faulty = upset_source();
    for draw in 0..200 {
        let word = faulty.next_packed_u64();
        assert!(
            !packed_is_permutation_u64(N, word),
            "draw {draw} survived the upset: {word:#06b}"
        );
    }
}

#[test]
fn guarded_stream_detects_the_upset_and_falls_back_with_honest_statistics() {
    let mut guarded = GuardedPermSource::new(upset_source(), FaultPolicy::Fallback);
    let samples = 40_000u64;
    let result = derangement_experiment_packed(&mut guarded, samples);

    // The guard saw every corrupt circuit draw and substituted a
    // software-unranked permutation each time.
    let stats = guarded.stats();
    assert_eq!(stats.detected, samples, "every draw should trip the guard");
    assert_eq!(stats.fell_back, samples);
    assert_eq!(stats.retried, 0);

    // The experiment still lands on the true derangement rate for
    // n = 4: d_4 / 4! = 9/24 = 0.375, e ≈ 24/9.
    assert_eq!(result.samples, samples);
    let p = result.derangements as f64 / result.samples as f64;
    assert!((p - 0.375).abs() < 0.02, "p = {p}");
    assert!(
        (result.e_estimate - 24.0 / 9.0).abs() < 0.15,
        "e = {}",
        result.e_estimate
    );
}

#[test]
fn guarded_stream_passes_a_healthy_circuit_through_untouched() {
    let mut bare = FaultyShuffleSource::new(N, OPTS, &[]);
    let mut guarded =
        GuardedPermSource::new(FaultyShuffleSource::new(N, OPTS, &[]), FaultPolicy::Panic);
    for draw in 0..500 {
        assert_eq!(
            guarded.next_packed_u64(),
            bare.next_packed_u64(),
            "guard perturbed a healthy stream at draw {draw}"
        );
    }
    let stats = guarded.stats();
    assert_eq!((stats.detected, stats.retried, stats.fell_back), (0, 0, 0));
}
