//! Word-level bit-parallel netlist simulation: 64, 256 or 512 lanes
//! per pass.
//!
//! The scalar [`crate::Simulator`] settles one `bool` per net per input
//! vector, so an exhaustive differential check pays one full netlist
//! walk per index. This module packs independent test vectors into a
//! single [`SimWord`] per net — lane `l` of every word is one complete
//! simulation — so the same forward pass evaluates
//! [`SimWord::LANES`] vectors at once: 64 for `u64`, 256 for
//! [`crate::W256`], 512 for [`crate::W512`]. Gate semantics map
//! directly onto word ops (`Not` → `!`, `And` → `&`, `Mux` →
//! `(sel & b) | (!sel & a)`), and DFFs latch per-lane: lane `l` of the
//! register word is the state of lane `l`'s machine, so all multi-cycle
//! simulations of the pipelined converter advance in lockstep under one
//! [`BatchSim::step`].
//!
//! Since the tape refactor, a forward pass executes the compiled
//! [`SimProgram`] — the same levelized opcode tape the scalar simulator
//! runs, instantiated at the batch word instead of `bool` — so batch
//! and scalar evaluation cannot diverge, and many batch instances (one
//! per worker thread in `hwperm-verify`'s sharded sweeps) share one
//! compilation through `Arc<SimProgram>`.
//!
//! [`BatchSimulator`] is the 64-lane `u64` instantiation — the default
//! throughout the workspace — and [`BatchSim`] is the width-generic
//! simulator behind it. The API mirrors the scalar simulator lane-wise:
//! [`BatchSim::set_input_lanes`] / [`BatchSim::eval`] /
//! [`BatchSim::step`] / [`BatchSim::read_output_lanes`], plus fast
//! paths for ports of at most 64 bits, which the batched exhaustive
//! checks in `hwperm-verify` use to avoid per-index allocations on the
//! hot path.

use crate::netlist::{NetId, Netlist};
use crate::program::{SimProgram, SimWord};
use crate::sim::assert_input_fits;
use hwperm_bignum::Ubig;
use std::sync::Arc;

/// Number of independent simulation lanes of the default `u64`
/// [`BatchSimulator`]: one per bit of the word stored for each net.
/// Width-generic code should use [`SimWord::LANES`] instead.
pub const LANES: usize = 64;

/// Evaluates a [`Netlist`] on [`SimWord::LANES`] independent input
/// vectors per forward pass. [`BatchSimulator`] aliases the 64-lane
/// `u64` instantiation; `BatchSim<W256>` / `BatchSim<W512>` settle 256
/// / 512 lanes per pass.
#[derive(Debug, Clone)]
pub struct BatchSim<W: SimWord> {
    program: Arc<SimProgram>,
    /// Current word of every slot; lane `l` is the slot's value in
    /// simulation `l`.
    values: Vec<W>,
    /// Reusable two-phase latch buffer (one entry per DFF).
    scratch: Vec<W>,
}

/// The default 64-lane batch simulator (`BatchSim<u64>`).
pub type BatchSimulator = BatchSim<u64>;

impl<W: SimWord> BatchSim<W> {
    /// Compiles the netlist and creates a batch simulator with all
    /// inputs at 0 in every lane and DFFs at their reset values
    /// (replicated across lanes). To share one compilation across many
    /// instances (or threads), compile once with
    /// [`SimProgram::compile_shared`] (or
    /// [`SimProgram::compile_fused_shared`] for the opcode-fused tape)
    /// and use [`BatchSim::from_program`].
    pub fn new(netlist: Netlist) -> Self {
        Self::from_program(SimProgram::compile_shared(netlist))
    }

    /// A batch simulator over an already-compiled (possibly shared)
    /// tape. Per-instance cost is one flat word array — this is what
    /// each worker thread of a sharded exhaustive sweep constructs.
    pub fn from_program(program: Arc<SimProgram>) -> Self {
        let values = program.initial_values();
        BatchSim {
            program,
            values,
            scratch: Vec::new(),
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.program.netlist()
    }

    /// The compiled tape this simulator executes.
    pub fn program(&self) -> &Arc<SimProgram> {
        &self.program
    }

    /// Drives an input port with one value per lane (LSB-first per
    /// value, lane `l` takes `values[l]`). Lanes at and beyond
    /// `values.len()` are driven to 0.
    ///
    /// # Panics
    /// Panics if the port does not exist, more than [`SimWord::LANES`]
    /// values are supplied, or any value does not fit the port width.
    /// The panic messages are identical to the scalar
    /// [`crate::Simulator::set_input`].
    pub fn set_input_lanes(&mut self, name: &str, values: &[Ubig]) {
        assert!(
            values.len() <= W::LANES,
            "{} lane values exceed the {}-lane batch width",
            values.len(),
            W::LANES
        );
        let slots = self.program.input_slots(name);
        for value in values {
            assert_input_fits(name, slots.len(), value.bit_len(), || value.to_string());
        }
        for (bit, &slot) in slots.iter().enumerate() {
            let mut word = W::zero();
            for (lane, value) in values.iter().enumerate() {
                if value.bit(bit) {
                    word.set_lane(lane, true);
                }
            }
            self.values[slot as usize] = word;
        }
    }

    /// `u64` fast path of [`BatchSim::set_input_lanes`]: drives lane
    /// `l` with `values[l]`, avoiding per-lane allocations.
    ///
    /// # Panics
    /// Same conditions (and messages) as [`BatchSim::set_input_lanes`].
    pub fn set_input_lanes_u64(&mut self, name: &str, values: &[u64]) {
        assert!(
            values.len() <= W::LANES,
            "{} lane values exceed the {}-lane batch width",
            values.len(),
            W::LANES
        );
        let slots = self.program.input_slots(name);
        let width = slots.len();
        for &value in values {
            let bits = (u64::BITS - value.leading_zeros()) as usize;
            assert_input_fits(name, width, bits, || value.to_string());
        }
        for (bit, &slot) in slots.iter().enumerate() {
            let mut word = W::zero();
            for (lane, &value) in values.iter().enumerate() {
                if (value >> bit) & 1 == 1 {
                    word.set_lane(lane, true);
                }
            }
            self.values[slot as usize] = word;
        }
    }

    /// Drives an input port directly in the word domain: `words[b]` is
    /// the lane word of port bit `b` (lane `l` of `words[b]` = port bit
    /// `b` in simulation `l`). This is the zero-transposition path for
    /// callers that already hold lane-transposed data — e.g. the
    /// exhaustive sweeps in `hwperm-verify`, whose consecutive-index
    /// batches have precomputable bit patterns.
    ///
    /// # Panics
    /// Panics if the port does not exist or `words.len()` differs from
    /// the port width.
    pub fn set_input_words(&mut self, name: &str, words: &[W]) {
        let slots = self.program.input_slots(name);
        assert!(
            words.len() == slots.len(),
            "{} words do not match input port {name:?} ({} bits)",
            words.len(),
            slots.len()
        );
        for (&slot, &word) in slots.iter().zip(words) {
            self.values[slot as usize] = word;
        }
    }

    /// Reads an output port directly in the word domain: element `b` of
    /// the result is the lane word of port bit `b` — the inverse of
    /// [`BatchSim::set_input_words`].
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn read_output_words(&self, name: &str) -> Vec<W> {
        self.program
            .output_slots(name)
            .iter()
            .map(|&s| self.values[s as usize])
            .collect()
    }

    /// Drives an input port in a single lane, leaving the other lanes'
    /// bits untouched.
    ///
    /// # Panics
    /// Panics if `lane >= W::LANES`, the port does not exist, or the
    /// value does not fit the port width.
    pub fn set_input_lane(&mut self, lane: usize, name: &str, value: &Ubig) {
        assert!(
            lane < W::LANES,
            "lane {lane} out of range (batch has {} lanes)",
            W::LANES
        );
        let slots = self.program.input_slots(name);
        assert_input_fits(name, slots.len(), value.bit_len(), || value.to_string());
        for (bit, &slot) in slots.iter().enumerate() {
            self.values[slot as usize].set_lane(lane, value.bit(bit));
        }
    }

    /// Combinational settle: one pass over the compiled tape, all
    /// lanes at once. Input slots keep whatever was last driven; DFF
    /// slots present their registered state.
    pub fn eval(&mut self) {
        self.program.exec(&mut self.values);
    }

    /// One clock cycle: combinational settle, then every DFF latches
    /// its `d` input — independently per lane, so lane `l` advances
    /// exactly as a scalar simulator fed lane `l`'s input sequence.
    pub fn step(&mut self) {
        self.eval();
        self.program.latch(&mut self.values, &mut self.scratch);
    }

    /// Resets all DFFs to their `init` values in every lane (values
    /// stay stale until the next [`BatchSim::eval`]).
    pub fn reset(&mut self) {
        self.program.reset(&mut self.values);
    }

    /// Reads an output port in one lane (LSB-first). Call after
    /// [`BatchSim::eval`] or [`BatchSim::step`].
    ///
    /// # Panics
    /// Panics if the port does not exist or `lane >= W::LANES`.
    pub fn read_output_lane(&self, name: &str, lane: usize) -> Ubig {
        assert!(
            lane < W::LANES,
            "lane {lane} out of range (batch has {} lanes)",
            W::LANES
        );
        let slots = self.program.output_slots(name);
        let mut out = Ubig::zero();
        for (i, &slot) in slots.iter().enumerate() {
            if self.values[slot as usize].lane(lane) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Reads an output port in every lane: element `l` of the result is
    /// lane `l`'s value.
    pub fn read_output_lanes(&self, name: &str) -> Vec<Ubig> {
        (0..W::LANES)
            .map(|lane| self.read_output_lane(name, lane))
            .collect()
    }

    /// Reads a single net's current word (lane `l` = simulation `l`),
    /// for structural probing — e.g. word-parallel exactly-one checks
    /// over recorded one-hot select banks.
    ///
    /// # Panics
    /// Panics if the tape was compiled with opcode fusion and the net
    /// was elided (see [`SimProgram::compile_fused`]).
    pub fn probe(&self, net: NetId) -> W {
        self.values[self.program.slot(net)]
    }
}

impl BatchSimulator {
    /// `u64` fast path of [`BatchSim::read_output_lanes`] for ports of
    /// at most 64 bits: element `l` is lane `l`'s value.
    ///
    /// # Panics
    /// Panics if the port does not exist or is wider than 64 bits.
    pub fn read_output_lanes_u64(&self, name: &str) -> [u64; LANES] {
        let slots = self.program.output_slots(name);
        assert!(
            slots.len() <= 64,
            "output port {name:?} ({} bits) exceeds the 64-bit u64 fast path",
            slots.len()
        );
        let mut out = [0u64; LANES];
        for (bit, &slot) in slots.iter().enumerate() {
            let word = self.values[slot as usize];
            for (lane, dst) in out.iter_mut().enumerate() {
                *dst |= (word >> lane & 1) << bit;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Simulator, W256, W512};

    #[test]
    fn lanes_are_independent_passthrough() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        b.output_bus("y", &x);
        let mut sim = BatchSimulator::new(b.finish());
        let values: Vec<u64> = (0..64).map(|l| (l * 3) & 0xFF).collect();
        sim.set_input_lanes_u64("x", &values);
        sim.eval();
        let out = sim.read_output_lanes_u64("y");
        assert_eq!(&out[..], &values[..]);
    }

    #[test]
    fn ubig_and_u64_lane_inputs_agree() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        let nl = b.finish();

        let xs: Vec<u64> = (0..64).map(|l| (l * 7 + 3) & 0xFF).collect();
        let ys: Vec<u64> = (0..64).map(|l| (l * 13 + 91) & 0xFF).collect();
        let mut fast = BatchSimulator::new(nl.clone());
        fast.set_input_lanes_u64("x", &xs);
        fast.set_input_lanes_u64("y", &ys);
        fast.eval();
        let mut slow = BatchSimulator::new(nl);
        let xb: Vec<Ubig> = xs.iter().map(|&v| Ubig::from(v)).collect();
        let yb: Vec<Ubig> = ys.iter().map(|&v| Ubig::from(v)).collect();
        slow.set_input_lanes("x", &xb);
        slow.set_input_lanes("y", &yb);
        slow.eval();
        for lane in 0..LANES {
            assert_eq!(
                fast.read_output_lane("s", lane),
                slow.read_output_lane("s", lane)
            );
            let sum = (xs[lane] + ys[lane]) & 0xFF;
            assert_eq!(fast.read_output_lane("s", lane).to_u64(), Some(sum));
        }
        assert_eq!(fast.read_output_lanes("s"), slow.read_output_lanes("s"));
    }

    #[test]
    fn every_lane_matches_scalar_adder() {
        let build = || {
            let mut b = Builder::new();
            let x = b.input_bus("x", 6);
            let y = b.input_bus("y", 6);
            let (s, c) = b.add(&x, &y);
            b.output_bus("s", &s);
            b.output_bus("c", &[c]);
            b.finish()
        };
        let xs: Vec<u64> = (0..64).map(|l| (l * 5) & 0x3F).collect();
        let ys: Vec<u64> = (0..64).map(|l| (l * 11 + 1) & 0x3F).collect();
        let mut batch = BatchSimulator::new(build());
        batch.set_input_lanes_u64("x", &xs);
        batch.set_input_lanes_u64("y", &ys);
        batch.eval();
        let mut scalar = Simulator::new(build());
        for lane in 0..LANES {
            scalar.set_input_u64("x", xs[lane]);
            scalar.set_input_u64("y", ys[lane]);
            scalar.eval();
            assert_eq!(batch.read_output_lane("s", lane), scalar.read_output("s"));
            assert_eq!(batch.read_output_lane("c", lane), scalar.read_output("c"));
        }
    }

    #[test]
    fn scalar_and_batch_share_one_program() {
        use crate::program::SimProgram;
        use std::sync::Arc;
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let program = SimProgram::compile_shared(b.finish());
        let mut scalar = Simulator::from_program(Arc::clone(&program));
        let mut batch = BatchSimulator::from_program(Arc::clone(&program));
        scalar.set_input_u64("x", 5);
        scalar.eval();
        batch.set_input_lanes_u64("x", &[5; LANES]);
        batch.eval();
        assert_eq!(
            batch.read_output_lane("y", 11),
            scalar.read_output("y"),
            "one tape, two execution widths"
        );
        assert!(Arc::ptr_eq(scalar.program(), batch.program()));
    }

    #[test]
    fn dffs_latch_per_lane() {
        // x -> DFF -> DFF -> y: each lane sees its own value arrive
        // after exactly two steps, with distinct values per lane.
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let r1 = b.register_bus(&x, false);
        let r2 = b.register_bus(&r1, false);
        b.output_bus("y", &r2);
        let mut sim = BatchSimulator::new(b.finish());

        let first: Vec<u64> = (0..64).map(|l| l & 0x3F).collect();
        let second: Vec<u64> = (0..64).map(|l| (63 - l) & 0x3F).collect();
        sim.set_input_lanes_u64("x", &first);
        sim.step();
        sim.set_input_lanes_u64("x", &second);
        sim.step();
        sim.eval();
        assert_eq!(&sim.read_output_lanes_u64("y")[..], &first[..]);
        sim.step();
        sim.eval();
        assert_eq!(&sim.read_output_lanes_u64("y")[..], &second[..]);
    }

    #[test]
    fn dff_init_and_reset_replicate_across_lanes() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let r = b.dff(x[0], true);
        b.output_bus("y", &[r]);
        let mut sim = BatchSimulator::new(b.finish());
        sim.eval();
        assert_eq!(sim.read_output_lanes_u64("y"), [1u64; LANES]);
        // Half the lanes pull the flop low, half keep it high.
        let half: Vec<u64> = (0..64).map(|l| (l as u64) & 1).collect();
        sim.set_input_lanes_u64("x", &half);
        sim.step();
        sim.eval();
        assert_eq!(&sim.read_output_lanes_u64("y")[..], &half[..]);
        sim.reset();
        sim.eval();
        assert_eq!(sim.read_output_lanes_u64("y"), [1u64; LANES]);
    }

    #[test]
    fn set_input_lane_touches_only_its_lane() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let mut sim = BatchSimulator::new(b.finish());
        let values: Vec<u64> = (0..64).map(|l| l & 0xF).collect();
        sim.set_input_lanes_u64("x", &values);
        sim.set_input_lane(7, "x", &Ubig::from(0xAu64));
        sim.eval();
        let out = sim.read_output_lanes_u64("y");
        for (lane, &v) in values.iter().enumerate() {
            let want = if lane == 7 { 0xA } else { v };
            assert_eq!(out[lane], want, "lane {lane}");
        }
    }

    #[test]
    fn partial_lane_vectors_zero_the_rest() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("x", &[0xF; LANES]);
        sim.eval();
        sim.set_input_lanes_u64("x", &[5, 9]);
        sim.eval();
        let out = sim.read_output_lanes_u64("y");
        assert_eq!(out[0], 5);
        assert_eq!(out[1], 9);
        assert!(out[2..].iter().all(|&v| v == 0), "stale lanes must clear");
    }

    #[test]
    fn word_domain_round_trips_through_lane_domain() {
        // set_input_words is the transposed twin of set_input_lanes:
        // driving the same data through either must be indistinguishable.
        let mut b = Builder::new();
        let x = b.input_bus("x", 5);
        let y = b.input_bus("y", 5);
        let (s, _) = b.add(&x, &y);
        b.output_bus("s", &s);
        let nl = b.finish();

        let xs: Vec<u64> = (0..64).map(|l| (l * 3 + 1) & 0x1F).collect();
        let mut by_lanes = BatchSimulator::new(nl.clone());
        by_lanes.set_input_lanes_u64("x", &xs);
        by_lanes.set_input_lanes_u64("y", &[7; LANES]);
        by_lanes.eval();

        // Transpose xs by hand into per-bit words.
        let words: Vec<u64> = (0..5)
            .map(|b| {
                xs.iter()
                    .enumerate()
                    .fold(0u64, |w, (l, &v)| w | (((v >> b) & 1) << l))
            })
            .collect();
        let mut by_words = BatchSimulator::new(nl);
        by_words.set_input_words("x", &words);
        by_words.set_input_lanes_u64("y", &[7; LANES]);
        by_words.eval();

        assert_eq!(
            by_lanes.read_output_lanes_u64("s"),
            by_words.read_output_lanes_u64("s")
        );
        // And reading back in the word domain matches a hand transpose
        // of the lane-domain view.
        let out_words = by_words.read_output_words("s");
        let lanes = by_words.read_output_lanes_u64("s");
        for (b, &w) in out_words.iter().enumerate() {
            let expect = lanes
                .iter()
                .enumerate()
                .fold(0u64, |acc, (l, &v)| acc | (((v >> b) & 1) << l));
            assert_eq!(w, expect, "output bit {b}");
        }
    }

    #[test]
    fn wide_batches_match_u64_lanes_past_lane_64() {
        // A W256 batch drives 200 distinct adder vectors; every lane
        // must agree with the scalar simulator, including lanes the
        // u64 path cannot reach.
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let y = b.input_bus("y", 6);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        let nl = b.finish();
        let xs: Vec<u64> = (0..200).map(|l| (l * 5 + 2) & 0x3F).collect();
        let ys: Vec<u64> = (0..200).map(|l| (l * 11 + 7) & 0x3F).collect();
        let mut wide: BatchSim<W256> = BatchSim::new(nl.clone());
        wide.set_input_lanes_u64("x", &xs);
        wide.set_input_lanes_u64("y", &ys);
        wide.eval();
        let mut scalar = Simulator::new(nl);
        for lane in 0..200 {
            scalar.set_input_u64("x", xs[lane]);
            scalar.set_input_u64("y", ys[lane]);
            scalar.eval();
            assert_eq!(
                wide.read_output_lane("s", lane),
                scalar.read_output("s"),
                "lane {lane}"
            );
            assert_eq!(wide.read_output_lane("c", lane), scalar.read_output("c"));
        }
    }

    #[test]
    fn wide_dffs_latch_per_lane_past_lane_64() {
        // 512-lane two-stage pipeline: values injected in lanes 0, 77
        // and 500 arrive after exactly two steps, independently.
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let r1 = b.register_bus(&x, false);
        let r2 = b.register_bus(&r1, false);
        b.output_bus("y", &r2);
        let mut sim: BatchSim<W512> = BatchSim::new(b.finish());
        for (lane, v) in [(0usize, 13u64), (77, 42), (500, 63)] {
            sim.set_input_lane(lane, "x", &Ubig::from(v));
        }
        sim.step();
        sim.set_input_lanes_u64("x", &[0]);
        sim.step();
        sim.eval();
        for (lane, v) in [(0usize, 13u64), (77, 42), (500, 63)] {
            assert_eq!(sim.read_output_lane("y", lane).to_u64(), Some(v));
        }
        assert_eq!(sim.read_output_lane("y", 1).to_u64(), Some(0));
    }

    #[test]
    #[should_panic(expected = "words do not match input port")]
    fn word_count_must_match_port_width() {
        let mut b = Builder::new();
        b.input_bus("x", 3);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_words("x", &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit input port")]
    fn lane_width_checked_like_scalar() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("x", &[1, 9]);
    }

    #[test]
    #[should_panic(expected = "no input port named")]
    fn unknown_port_panics_like_scalar() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("y", &[0]);
    }

    #[test]
    #[should_panic(expected = "exceed the 64-lane batch width")]
    fn more_than_64_lane_values_rejected() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("x", &[0u64; 65]);
    }

    #[test]
    #[should_panic(expected = "257 lane values exceed the 256-lane batch width")]
    fn wide_lane_overflow_names_the_wide_width() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim: BatchSim<W256> = BatchSim::new(b.finish());
        sim.set_input_lanes_u64("x", &[0u64; 257]);
    }
}
