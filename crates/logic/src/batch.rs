//! 64-lane bit-parallel ("word-level") netlist simulation.
//!
//! The scalar [`crate::Simulator`] settles one `bool` per net per input
//! vector, so an exhaustive differential check pays one full netlist
//! walk per index. This module packs 64 independent test vectors into a
//! single `u64` per net — bit lane `l` of every word is one complete
//! simulation — so the same forward pass evaluates 64 vectors at once.
//! Gate semantics map directly onto word ops (`Not` → `!`, `And` → `&`,
//! `Mux` → `(sel & b) | (!sel & a)`), and DFFs latch per-lane: lane `l`
//! of the register word is the state of lane `l`'s machine, so 64
//! multi-cycle simulations of the pipelined converter advance in
//! lockstep under one [`BatchSimulator::step`].
//!
//! The API mirrors the scalar simulator lane-wise:
//! [`BatchSimulator::set_input_lanes`] / [`BatchSimulator::eval`] /
//! [`BatchSimulator::step`] / [`BatchSimulator::read_output_lanes`],
//! plus `u64` fast paths for ports of at most 64 bits, which the
//! batched exhaustive checks in `hwperm-verify` use to avoid per-index
//! allocations on the hot path.

use crate::netlist::{Gate, NetId, Netlist};
use crate::sim::{assert_input_fits, lookup_input_port};
use hwperm_bignum::Ubig;

/// Number of independent simulation lanes per pass: one per bit of the
/// `u64` word stored for each net.
pub const LANES: usize = 64;

/// Evaluates a [`Netlist`] on [`LANES`] independent input vectors per
/// forward pass.
#[derive(Debug, Clone)]
pub struct BatchSimulator {
    netlist: Netlist,
    /// Current word of every net; bit `l` is the net's value in lane `l`.
    values: Vec<u64>,
    /// Registered state per gate index (only meaningful for `Dff`s),
    /// one lane per bit.
    state: Vec<u64>,
}

impl BatchSimulator {
    /// Creates a batch simulator with all inputs at 0 in every lane and
    /// DFFs at their reset values (replicated across lanes).
    pub fn new(netlist: Netlist) -> Self {
        let n = netlist.len();
        let mut state = vec![0u64; n];
        for (i, g) in netlist.gates().iter().enumerate() {
            if let Gate::Dff { init, .. } = g {
                state[i] = if *init { u64::MAX } else { 0 };
            }
        }
        BatchSimulator {
            netlist,
            values: vec![0u64; n],
            state,
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Drives an input port with one value per lane (LSB-first per
    /// value, lane `l` takes `values[l]`). Lanes at and beyond
    /// `values.len()` are driven to 0.
    ///
    /// # Panics
    /// Panics if the port does not exist, more than [`LANES`] values
    /// are supplied, or any value does not fit the port width. The
    /// panic messages are identical to the scalar
    /// [`crate::Simulator::set_input`].
    pub fn set_input_lanes(&mut self, name: &str, values: &[Ubig]) {
        assert!(
            values.len() <= LANES,
            "{} lane values exceed the {LANES}-lane batch width",
            values.len()
        );
        let port = lookup_input_port(&self.netlist, name).clone();
        for value in values {
            assert_input_fits(name, port.nets.len(), value.bit_len(), || value.to_string());
        }
        for (bit, net) in port.nets.iter().enumerate() {
            let mut word = 0u64;
            for (lane, value) in values.iter().enumerate() {
                if value.bit(bit) {
                    word |= 1 << lane;
                }
            }
            self.values[net.index()] = word;
        }
    }

    /// `u64` fast path of [`BatchSimulator::set_input_lanes`]: drives
    /// lane `l` with `values[l]`, avoiding per-lane allocations.
    ///
    /// # Panics
    /// Same conditions (and messages) as
    /// [`BatchSimulator::set_input_lanes`].
    pub fn set_input_lanes_u64(&mut self, name: &str, values: &[u64]) {
        assert!(
            values.len() <= LANES,
            "{} lane values exceed the {LANES}-lane batch width",
            values.len()
        );
        let port = lookup_input_port(&self.netlist, name).clone();
        let width = port.nets.len();
        for &value in values {
            let bits = (u64::BITS - value.leading_zeros()) as usize;
            assert_input_fits(name, width, bits, || value.to_string());
        }
        for (bit, net) in port.nets.iter().enumerate() {
            let mut word = 0u64;
            for (lane, &value) in values.iter().enumerate() {
                word |= ((value >> bit) & 1) << lane;
            }
            self.values[net.index()] = word;
        }
    }

    /// Drives an input port directly in the word domain: `words[b]` is
    /// the lane word of port bit `b` (bit `l` of `words[b]` = port bit
    /// `b` in lane `l`). This is the zero-transposition path for
    /// callers that already hold lane-transposed data — e.g. the
    /// exhaustive sweeps in `hwperm-verify`, whose consecutive-index
    /// batches have precomputable bit patterns.
    ///
    /// # Panics
    /// Panics if the port does not exist or `words.len()` differs from
    /// the port width.
    pub fn set_input_words(&mut self, name: &str, words: &[u64]) {
        // No port clone here (unlike the lane-domain setters): this is
        // the hot path of the exhaustive sweeps, and the borrows of
        // `netlist` and `values` are disjoint fields.
        let port = lookup_input_port(&self.netlist, name);
        assert!(
            words.len() == port.nets.len(),
            "{} words do not match input port {name:?} ({} bits)",
            words.len(),
            port.nets.len()
        );
        for (net, &word) in port.nets.iter().zip(words) {
            self.values[net.index()] = word;
        }
    }

    /// Reads an output port directly in the word domain: element `b` of
    /// the result is the lane word of port bit `b` — the inverse of
    /// [`BatchSimulator::set_input_words`].
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn read_output_words(&self, name: &str) -> Vec<u64> {
        let port = self
            .netlist
            .output_port(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        port.nets.iter().map(|n| self.values[n.index()]).collect()
    }

    /// Drives an input port in a single lane, leaving the other lanes'
    /// bits untouched.
    ///
    /// # Panics
    /// Panics if `lane >= LANES`, the port does not exist, or the value
    /// does not fit the port width.
    pub fn set_input_lane(&mut self, lane: usize, name: &str, value: &Ubig) {
        assert!(
            lane < LANES,
            "lane {lane} out of range (batch has {LANES} lanes)"
        );
        let port = lookup_input_port(&self.netlist, name).clone();
        assert_input_fits(name, port.nets.len(), value.bit_len(), || value.to_string());
        for (bit, net) in port.nets.iter().enumerate() {
            let mask = 1u64 << lane;
            if value.bit(bit) {
                self.values[net.index()] |= mask;
            } else {
                self.values[net.index()] &= !mask;
            }
        }
    }

    /// Combinational settle: one forward pass over the gate array, all
    /// 64 lanes at once. Input nets keep whatever was last driven; DFF
    /// nets present their registered state.
    pub fn eval(&mut self) {
        for i in 0..self.netlist.len() {
            let v = match self.netlist.gates()[i] {
                Gate::Const(c) => {
                    if c {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Gate::Input => continue, // externally driven
                Gate::Not(x) => !self.values[x.index()],
                Gate::And(x, y) => self.values[x.index()] & self.values[y.index()],
                Gate::Or(x, y) => self.values[x.index()] | self.values[y.index()],
                Gate::Xor(x, y) => self.values[x.index()] ^ self.values[y.index()],
                Gate::Mux { sel, a, b } => {
                    let s = self.values[sel.index()];
                    (s & self.values[b.index()]) | (!s & self.values[a.index()])
                }
                Gate::Dff { .. } => self.state[i],
            };
            self.values[i] = v;
        }
    }

    /// One clock cycle: combinational settle, then every DFF latches
    /// its `d` input — independently per lane, so lane `l` advances
    /// exactly as a scalar simulator fed lane `l`'s input sequence.
    pub fn step(&mut self) {
        self.eval();
        for i in 0..self.netlist.len() {
            if let Gate::Dff { d, .. } = self.netlist.gates()[i] {
                self.state[i] = self.values[d.index()];
            }
        }
    }

    /// Resets all DFFs to their `init` values in every lane (values
    /// stay stale until the next [`BatchSimulator::eval`]).
    pub fn reset(&mut self) {
        for (i, g) in self.netlist.gates().iter().enumerate() {
            if let Gate::Dff { init, .. } = g {
                self.state[i] = if *init { u64::MAX } else { 0 };
            }
        }
    }

    /// Reads an output port in one lane (LSB-first). Call after
    /// [`BatchSimulator::eval`] or [`BatchSimulator::step`].
    ///
    /// # Panics
    /// Panics if the port does not exist or `lane >= LANES`.
    pub fn read_output_lane(&self, name: &str, lane: usize) -> Ubig {
        assert!(
            lane < LANES,
            "lane {lane} out of range (batch has {LANES} lanes)"
        );
        let port = self
            .netlist
            .output_port(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        let mut out = Ubig::zero();
        for (i, net) in port.nets.iter().enumerate() {
            if self.values[net.index()] >> lane & 1 == 1 {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Reads an output port in every lane: element `l` of the result is
    /// lane `l`'s value.
    pub fn read_output_lanes(&self, name: &str) -> Vec<Ubig> {
        (0..LANES)
            .map(|lane| self.read_output_lane(name, lane))
            .collect()
    }

    /// `u64` fast path of [`BatchSimulator::read_output_lanes`] for
    /// ports of at most 64 bits: element `l` is lane `l`'s value.
    ///
    /// # Panics
    /// Panics if the port does not exist or is wider than 64 bits.
    pub fn read_output_lanes_u64(&self, name: &str) -> [u64; LANES] {
        let port = self
            .netlist
            .output_port(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        assert!(
            port.nets.len() <= 64,
            "output port {name:?} ({} bits) exceeds the 64-bit u64 fast path",
            port.nets.len()
        );
        let mut out = [0u64; LANES];
        for (bit, net) in port.nets.iter().enumerate() {
            let word = self.values[net.index()];
            for (lane, slot) in out.iter_mut().enumerate() {
                *slot |= (word >> lane & 1) << bit;
            }
        }
        out
    }

    /// Reads a single net's current word (bit `l` = lane `l`), for
    /// structural probing — e.g. word-parallel exactly-one checks over
    /// recorded one-hot select banks.
    pub fn probe(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Simulator};

    #[test]
    fn lanes_are_independent_passthrough() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        b.output_bus("y", &x);
        let mut sim = BatchSimulator::new(b.finish());
        let values: Vec<u64> = (0..64).map(|l| (l * 3) & 0xFF).collect();
        sim.set_input_lanes_u64("x", &values);
        sim.eval();
        let out = sim.read_output_lanes_u64("y");
        assert_eq!(&out[..], &values[..]);
    }

    #[test]
    fn ubig_and_u64_lane_inputs_agree() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        let nl = b.finish();

        let xs: Vec<u64> = (0..64).map(|l| (l * 7 + 3) & 0xFF).collect();
        let ys: Vec<u64> = (0..64).map(|l| (l * 13 + 91) & 0xFF).collect();
        let mut fast = BatchSimulator::new(nl.clone());
        fast.set_input_lanes_u64("x", &xs);
        fast.set_input_lanes_u64("y", &ys);
        fast.eval();
        let mut slow = BatchSimulator::new(nl);
        let xb: Vec<Ubig> = xs.iter().map(|&v| Ubig::from(v)).collect();
        let yb: Vec<Ubig> = ys.iter().map(|&v| Ubig::from(v)).collect();
        slow.set_input_lanes("x", &xb);
        slow.set_input_lanes("y", &yb);
        slow.eval();
        for lane in 0..LANES {
            assert_eq!(
                fast.read_output_lane("s", lane),
                slow.read_output_lane("s", lane)
            );
            let sum = (xs[lane] + ys[lane]) & 0xFF;
            assert_eq!(fast.read_output_lane("s", lane).to_u64(), Some(sum));
        }
        assert_eq!(fast.read_output_lanes("s"), slow.read_output_lanes("s"));
    }

    #[test]
    fn every_lane_matches_scalar_adder() {
        let build = || {
            let mut b = Builder::new();
            let x = b.input_bus("x", 6);
            let y = b.input_bus("y", 6);
            let (s, c) = b.add(&x, &y);
            b.output_bus("s", &s);
            b.output_bus("c", &[c]);
            b.finish()
        };
        let xs: Vec<u64> = (0..64).map(|l| (l * 5) & 0x3F).collect();
        let ys: Vec<u64> = (0..64).map(|l| (l * 11 + 1) & 0x3F).collect();
        let mut batch = BatchSimulator::new(build());
        batch.set_input_lanes_u64("x", &xs);
        batch.set_input_lanes_u64("y", &ys);
        batch.eval();
        let mut scalar = Simulator::new(build());
        for lane in 0..LANES {
            scalar.set_input_u64("x", xs[lane]);
            scalar.set_input_u64("y", ys[lane]);
            scalar.eval();
            assert_eq!(batch.read_output_lane("s", lane), scalar.read_output("s"));
            assert_eq!(batch.read_output_lane("c", lane), scalar.read_output("c"));
        }
    }

    #[test]
    fn dffs_latch_per_lane() {
        // x -> DFF -> DFF -> y: each lane sees its own value arrive
        // after exactly two steps, with distinct values per lane.
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let r1 = b.register_bus(&x, false);
        let r2 = b.register_bus(&r1, false);
        b.output_bus("y", &r2);
        let mut sim = BatchSimulator::new(b.finish());

        let first: Vec<u64> = (0..64).map(|l| l & 0x3F).collect();
        let second: Vec<u64> = (0..64).map(|l| (63 - l) & 0x3F).collect();
        sim.set_input_lanes_u64("x", &first);
        sim.step();
        sim.set_input_lanes_u64("x", &second);
        sim.step();
        sim.eval();
        assert_eq!(&sim.read_output_lanes_u64("y")[..], &first[..]);
        sim.step();
        sim.eval();
        assert_eq!(&sim.read_output_lanes_u64("y")[..], &second[..]);
    }

    #[test]
    fn dff_init_and_reset_replicate_across_lanes() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let r = b.dff(x[0], true);
        b.output_bus("y", &[r]);
        let mut sim = BatchSimulator::new(b.finish());
        sim.eval();
        assert_eq!(sim.read_output_lanes_u64("y"), [1u64; LANES]);
        // Half the lanes pull the flop low, half keep it high.
        let half: Vec<u64> = (0..64).map(|l| (l as u64) & 1).collect();
        sim.set_input_lanes_u64("x", &half);
        sim.step();
        sim.eval();
        assert_eq!(&sim.read_output_lanes_u64("y")[..], &half[..]);
        sim.reset();
        sim.eval();
        assert_eq!(sim.read_output_lanes_u64("y"), [1u64; LANES]);
    }

    #[test]
    fn set_input_lane_touches_only_its_lane() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let mut sim = BatchSimulator::new(b.finish());
        let values: Vec<u64> = (0..64).map(|l| l & 0xF).collect();
        sim.set_input_lanes_u64("x", &values);
        sim.set_input_lane(7, "x", &Ubig::from(0xAu64));
        sim.eval();
        let out = sim.read_output_lanes_u64("y");
        for (lane, &v) in values.iter().enumerate() {
            let want = if lane == 7 { 0xA } else { v };
            assert_eq!(out[lane], want, "lane {lane}");
        }
    }

    #[test]
    fn partial_lane_vectors_zero_the_rest() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("x", &[0xF; LANES]);
        sim.eval();
        sim.set_input_lanes_u64("x", &[5, 9]);
        sim.eval();
        let out = sim.read_output_lanes_u64("y");
        assert_eq!(out[0], 5);
        assert_eq!(out[1], 9);
        assert!(out[2..].iter().all(|&v| v == 0), "stale lanes must clear");
    }

    #[test]
    fn word_domain_round_trips_through_lane_domain() {
        // set_input_words is the transposed twin of set_input_lanes:
        // driving the same data through either must be indistinguishable.
        let mut b = Builder::new();
        let x = b.input_bus("x", 5);
        let y = b.input_bus("y", 5);
        let (s, _) = b.add(&x, &y);
        b.output_bus("s", &s);
        let nl = b.finish();

        let xs: Vec<u64> = (0..64).map(|l| (l * 3 + 1) & 0x1F).collect();
        let mut by_lanes = BatchSimulator::new(nl.clone());
        by_lanes.set_input_lanes_u64("x", &xs);
        by_lanes.set_input_lanes_u64("y", &[7; LANES]);
        by_lanes.eval();

        // Transpose xs by hand into per-bit words.
        let words: Vec<u64> = (0..5)
            .map(|b| {
                xs.iter()
                    .enumerate()
                    .fold(0u64, |w, (l, &v)| w | (((v >> b) & 1) << l))
            })
            .collect();
        let mut by_words = BatchSimulator::new(nl);
        by_words.set_input_words("x", &words);
        by_words.set_input_lanes_u64("y", &[7; LANES]);
        by_words.eval();

        assert_eq!(
            by_lanes.read_output_lanes_u64("s"),
            by_words.read_output_lanes_u64("s")
        );
        // And reading back in the word domain matches a hand transpose
        // of the lane-domain view.
        let out_words = by_words.read_output_words("s");
        let lanes = by_words.read_output_lanes_u64("s");
        for (b, &w) in out_words.iter().enumerate() {
            let expect = lanes
                .iter()
                .enumerate()
                .fold(0u64, |acc, (l, &v)| acc | (((v >> b) & 1) << l));
            assert_eq!(w, expect, "output bit {b}");
        }
    }

    #[test]
    #[should_panic(expected = "words do not match input port")]
    fn word_count_must_match_port_width() {
        let mut b = Builder::new();
        b.input_bus("x", 3);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_words("x", &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit input port")]
    fn lane_width_checked_like_scalar() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("x", &[1, 9]);
    }

    #[test]
    #[should_panic(expected = "no input port named")]
    fn unknown_port_panics_like_scalar() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("y", &[0]);
    }

    #[test]
    #[should_panic(expected = "exceed the 64-lane batch width")]
    fn more_than_64_lane_values_rejected() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = BatchSimulator::new(b.finish());
        sim.set_input_lanes_u64("x", &[0u64; 65]);
    }
}
