//! The netlist data model: primitive gates and named ports.

use std::fmt;

/// Identifier of a net (the output of one gate). Nets are dense indices
/// into [`Netlist::gates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A net id from a raw index, with no range or ordering check —
    /// the id may point anywhere, including past the end of the gate
    /// array. Exists for fault injection (pairing with
    /// [`Netlist::with_gate_replaced`] to build deliberately broken
    /// netlists); normal construction goes through the builder, which
    /// only ever hands out ids of gates it created.
    #[inline]
    pub fn forged(raw: u32) -> NetId {
        NetId(raw)
    }
}

/// A primitive gate. Every gate drives exactly one net.
///
/// The set is deliberately small — it is what the paper's comparator /
/// subtractor / one-hot-MUX structures decompose into, and it keeps the
/// LUT mapper honest (no macro-gates that would dodge technology mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Constant 0 or 1.
    Const(bool),
    /// Primary input bit (value supplied by the testbench).
    Input,
    /// Inverter.
    Not(NetId),
    /// 2-input AND.
    And(NetId, NetId),
    /// 2-input OR.
    Or(NetId, NetId),
    /// 2-input XOR.
    Xor(NetId, NetId),
    /// 2:1 multiplexer: output = if `sel` { `b` } else { `a` }.
    Mux {
        /// Select line.
        sel: NetId,
        /// Value when `sel = 0`.
        a: NetId,
        /// Value when `sel = 1`.
        b: NetId,
    },
    /// D flip-flop: output is the registered value; `d` is latched on
    /// every [`crate::Simulator::step`]. Reset value is `init`.
    Dff {
        /// Data input.
        d: NetId,
        /// Power-on / reset value.
        init: bool,
    },
}

impl Gate {
    /// The nets this gate reads.
    pub fn fanin(&self) -> impl Iterator<Item = NetId> {
        let (a, b, c) = match *self {
            Gate::Const(_) | Gate::Input => (None, None, None),
            Gate::Not(x) => (Some(x), None, None),
            Gate::And(x, y) | Gate::Or(x, y) | Gate::Xor(x, y) => (Some(x), Some(y), None),
            Gate::Mux { sel, a, b } => (Some(sel), Some(a), Some(b)),
            Gate::Dff { d, .. } => (Some(d), None, None),
        };
        [a, b, c].into_iter().flatten()
    }

    /// `true` for combinational gates (everything except `Input`, `Const`
    /// and `Dff`, whose outputs do not depend on the current-cycle wave).
    pub fn is_combinational(&self) -> bool {
        !matches!(self, Gate::Const(_) | Gate::Input | Gate::Dff { .. })
    }
}

/// A named bus port (list of nets, LSB first).
#[derive(Debug, Clone)]
pub struct Port {
    /// Port name, unique within its direction.
    pub name: String,
    /// Nets, least-significant bit first.
    pub nets: Vec<NetId>,
}

/// A structural defect found by [`Netlist::check_structure`].
///
/// `validate()` reports the first of these as an error string; the lint
/// engine maps each variant to its own diagnostic. Keeping a single
/// enumeration here means the two front-ends can never drift apart on
/// what counts as structurally broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralIssue {
    /// A gate's fanin references a net index `>= len()`.
    OutOfRangeRef {
        /// Index of the offending gate.
        gate: usize,
        /// The out-of-range net index it references.
        net: usize,
    },
    /// A combinational gate references a net at or after its own index,
    /// breaking topological order (only `Dff.d` may look forward).
    ForwardRef {
        /// Index of the offending combinational gate.
        gate: usize,
        /// The non-earlier net index it references.
        net: usize,
    },
    /// A port bit references a net index `>= len()`.
    PortNetOutOfRange {
        /// `true` for an output port, `false` for an input port.
        output: bool,
        /// Port name.
        port: String,
        /// Bit position within the port (LSB first).
        bit: usize,
    },
    /// An input port bit maps to a gate that is not `Gate::Input`.
    InputPortNonInput {
        /// Port name.
        port: String,
        /// Bit position within the port.
        bit: usize,
        /// The offending net.
        net: NetId,
    },
    /// Two ports of the same direction share a name.
    DuplicatePortName {
        /// `true` for output ports.
        output: bool,
        /// The duplicated name.
        name: String,
    },
    /// A port with zero bits.
    ZeroWidthPort {
        /// `true` for an output port.
        output: bool,
        /// Port name.
        name: String,
    },
    /// A port whose name is the empty string.
    EmptyPortName {
        /// `true` for an output port.
        output: bool,
    },
    /// The same `Input` gate is claimed by two different input port bits,
    /// so a testbench write through one port aliases the other.
    SharedInputBit {
        /// The doubly-claimed net.
        net: NetId,
        /// Name of the second port claiming it.
        port: String,
    },
    /// An `Input` gate is read (by gate fanin or an output port) but
    /// belongs to no input port, so nothing can ever drive it.
    OrphanInputGate {
        /// The undriven input net.
        net: NetId,
    },
}

impl fmt::Display for StructuralIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn dir(output: bool) -> &'static str {
            if output {
                "output"
            } else {
                "input"
            }
        }
        match self {
            StructuralIssue::OutOfRangeRef { gate, net } => {
                write!(f, "gate {gate} references out-of-range net {net}")
            }
            StructuralIssue::ForwardRef { gate, net } => write!(
                f,
                "combinational gate {gate} references non-earlier net {net} (cycle?)"
            ),
            StructuralIssue::PortNetOutOfRange { output, port, bit } => write!(
                f,
                "{} port {port} bit {bit} references out-of-range net",
                dir(*output)
            ),
            StructuralIssue::InputPortNonInput { port, bit, net } => write!(
                f,
                "input port {port} bit {bit} maps to non-Input gate at net {}",
                net.index()
            ),
            StructuralIssue::DuplicatePortName { output, name } => {
                write!(f, "duplicate {} port name {name}", dir(*output))
            }
            StructuralIssue::ZeroWidthPort { output, name } => {
                write!(f, "zero-width {} port {name}", dir(*output))
            }
            StructuralIssue::EmptyPortName { output } => {
                write!(f, "{} port with empty name", dir(*output))
            }
            StructuralIssue::SharedInputBit { net, port } => write!(
                f,
                "input port {port} re-claims net {} already owned by another input port",
                net.index()
            ),
            StructuralIssue::OrphanInputGate { net } => write!(
                f,
                "Input gate at net {} is read but belongs to no input port",
                net.index()
            ),
        }
    }
}

/// A complete circuit: gates in topological creation order plus named
/// input/output ports.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<Port>,
    pub(crate) outputs: Vec<Port>,
    /// Nets that belong to a dedicated carry chain (set by the builder's
    /// adder/subtractor combinators). The timing model charges these a
    /// fraction of a LUT delay, like the hardened carry logic of real
    /// FPGAs; everything else about them (simulation, LUT mapping) is
    /// unchanged.
    pub(crate) carry_nets: Vec<NetId>,
    /// Select banks that the generator *intended* to be one-hot (each
    /// bank is the select vector of a [`crate::Builder::one_hot_mux`]
    /// call). Pure metadata: simulation and mapping ignore it; the lint
    /// engine's one-hot checker proves or refutes the intent.
    pub(crate) onehot_banks: Vec<Vec<NetId>>,
}

impl Netlist {
    /// All gates, in topological (creation) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (= number of nets).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Named input ports.
    pub fn input_ports(&self) -> &[Port] {
        &self.inputs
    }

    /// Named output ports.
    pub fn output_ports(&self) -> &[Port] {
        &self.outputs
    }

    /// Looks up an input port by name.
    pub fn input_port(&self, name: &str) -> Option<&Port> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Looks up an output port by name.
    pub fn output_port(&self, name: &str) -> Option<&Port> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Nets marked as carry-chain members by the builder.
    pub fn carry_nets(&self) -> &[NetId] {
        &self.carry_nets
    }

    /// Select banks recorded as intended-one-hot by the builder's
    /// [`crate::Builder::one_hot_mux`] combinator (one entry per bank,
    /// nets in digit order). Metadata for the lint engine's one-hot
    /// checker; empty for hand-built netlists.
    pub fn one_hot_banks(&self) -> &[Vec<NetId>] {
        &self.onehot_banks
    }

    /// Number of D flip-flops (the "registers" column of Tables III/IV).
    pub fn register_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Dff { .. }))
            .count()
    }

    /// Number of combinational gates.
    pub fn combinational_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_combinational()).count()
    }

    /// Liveness mask: a gate is live iff its value can reach an output
    /// port, possibly through registers. Dead gates still simulate but
    /// are excluded from resource estimation (synthesis tools sweep
    /// them), and the mutation tests skip them.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<usize> = Vec::new();
        for port in &self.outputs {
            for net in &port.nets {
                stack.push(net.index());
            }
        }
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut live[i], true) {
                continue;
            }
            for f in self.gates[i].fanin() {
                stack.push(f.index());
            }
        }
        live
    }

    /// Fanout count per net (how many gate inputs plus output-port bits
    /// read it).
    pub fn fanout(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.gates.len()];
        for g in &self.gates {
            for f in g.fanin() {
                fanout[f.index()] += 1;
            }
        }
        for port in &self.outputs {
            for net in &port.nets {
                fanout[net.index()] += 1;
            }
        }
        fanout
    }

    /// Combinational logic depth in *gate* levels: inputs, constants and
    /// DFF outputs are level 0; every combinational gate is one more than
    /// its deepest fanin. (LUT-level depth, which drives the Fmax model,
    /// lives in [`crate::tech`].)
    pub fn gate_depth(&self) -> usize {
        let mut level = vec![0usize; self.gates.len()];
        let mut max = 0;
        for (i, g) in self.gates.iter().enumerate() {
            if g.is_combinational() {
                level[i] = 1 + g.fanin().map(|f| level[f.index()]).max().unwrap_or(0);
                max = max.max(level[i]);
            }
        }
        max
    }

    /// Returns a copy with gate `i` replaced — the fault-injection hook
    /// used by the mutation tests to prove the differential harness (and
    /// the lint engine) actually detect broken circuits.
    ///
    /// The result is *not* re-validated: mutation tests deliberately
    /// build structurally invalid netlists (forward references, orphaned
    /// inputs) to prove the checkers flag them. Run [`Self::validate`]
    /// before simulating if the mutation must stay well-formed.
    pub fn with_gate_replaced(&self, i: usize, gate: Gate) -> Netlist {
        let mut mutated = self.clone();
        mutated.gates[i] = gate;
        mutated
    }

    /// Enumerates every structural defect: out-of-range or forward fanin
    /// references (only `Dff.d` may look forward — state breaks the
    /// cycle), port nets out of range, input ports mapping to non-Input
    /// gates, duplicate port names per direction, zero-width ports,
    /// input bits claimed twice, and `Input` gates that are read but
    /// belong to no input port.
    ///
    /// [`Self::validate`] and the lint engine's error passes are both
    /// thin views over this list.
    pub fn check_structure(&self) -> Vec<StructuralIssue> {
        let mut issues = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            let allows_forward = matches!(g, Gate::Dff { .. });
            for f in g.fanin() {
                if f.index() >= self.gates.len() {
                    issues.push(StructuralIssue::OutOfRangeRef {
                        gate: i,
                        net: f.index(),
                    });
                } else if !allows_forward && f.index() >= i {
                    issues.push(StructuralIssue::ForwardRef {
                        gate: i,
                        net: f.index(),
                    });
                }
            }
        }
        for (output, ports) in [(false, &self.inputs), (true, &self.outputs)] {
            let mut seen = std::collections::HashSet::new();
            for port in ports.iter() {
                if !seen.insert(port.name.as_str()) {
                    issues.push(StructuralIssue::DuplicatePortName {
                        output,
                        name: port.name.clone(),
                    });
                }
                if port.nets.is_empty() {
                    issues.push(StructuralIssue::ZeroWidthPort {
                        output,
                        name: port.name.clone(),
                    });
                }
                if port.name.is_empty() {
                    issues.push(StructuralIssue::EmptyPortName { output });
                }
                for (bit, net) in port.nets.iter().enumerate() {
                    if net.index() >= self.gates.len() {
                        issues.push(StructuralIssue::PortNetOutOfRange {
                            output,
                            port: port.name.clone(),
                            bit,
                        });
                    }
                }
            }
        }
        // Input-gate ownership: each Input gate read by the circuit must
        // be driven through exactly one input-port bit.
        let mut owner = vec![false; self.gates.len()];
        for port in &self.inputs {
            for (bit, net) in port.nets.iter().enumerate() {
                if net.index() >= self.gates.len() {
                    continue; // already reported as PortNetOutOfRange
                }
                if !matches!(self.gates[net.index()], Gate::Input) {
                    issues.push(StructuralIssue::InputPortNonInput {
                        port: port.name.clone(),
                        bit,
                        net: *net,
                    });
                } else if std::mem::replace(&mut owner[net.index()], true) {
                    issues.push(StructuralIssue::SharedInputBit {
                        net: *net,
                        port: port.name.clone(),
                    });
                }
            }
        }
        let mut read = vec![false; self.gates.len()];
        for g in &self.gates {
            for f in g.fanin() {
                if f.index() < self.gates.len() {
                    read[f.index()] = true;
                }
            }
        }
        for port in &self.outputs {
            for net in &port.nets {
                if net.index() < self.gates.len() {
                    read[net.index()] = true;
                }
            }
        }
        for (i, g) in self.gates.iter().enumerate() {
            if matches!(g, Gate::Input) && read[i] && !owner[i] {
                issues.push(StructuralIssue::OrphanInputGate {
                    net: NetId(i as u32),
                });
            }
        }
        issues
    }

    /// Internal consistency check: `Ok` iff [`Self::check_structure`]
    /// finds nothing; otherwise the first defect, formatted. Used by
    /// tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        match self.check_structure().into_iter().next() {
            None => Ok(()),
            Some(issue) => Err(issue.to_string()),
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist: {} gates ({} comb, {} regs), depth {} gate levels",
            self.len(),
            self.combinational_count(),
            self.register_count(),
            self.gate_depth()
        )?;
        for p in &self.inputs {
            writeln!(f, "  in  {:<12} [{}]", p.name, p.nets.len())?;
        }
        for p in &self.outputs {
            writeln!(f, "  out {:<12} [{}]", p.name, p.nets.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn fanin_iteration() {
        let g = Gate::Mux {
            sel: NetId(0),
            a: NetId(1),
            b: NetId(2),
        };
        let fanin: Vec<_> = g.fanin().collect();
        assert_eq!(fanin, vec![NetId(0), NetId(1), NetId(2)]);
        assert_eq!(Gate::Input.fanin().count(), 0);
        assert_eq!(Gate::Not(NetId(5)).fanin().count(), 1);
    }

    #[test]
    fn netlist_counts() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let reg = b.register_bus(&x, false);
        b.output_bus("y", &reg);
        let n = b.finish();
        assert_eq!(n.register_count(), 4);
        assert_eq!(n.combinational_count(), 0);
        assert_eq!(n.gate_depth(), 0);
        n.validate().unwrap();
    }

    #[test]
    fn depth_counts_longest_chain() {
        // XOR chain over distinct inputs (NOT chains would constant-fold).
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let mut cur = x[0];
        for &bit in &x[1..] {
            cur = b.xor(cur, bit);
        }
        b.output_bus("y", &[cur]);
        assert_eq!(b.finish().gate_depth(), 5);
    }

    #[test]
    fn validate_catches_forward_reference() {
        // Hand-build a broken netlist.
        let n = Netlist {
            gates: vec![Gate::Not(NetId(1)), Gate::Input],
            ..Netlist::default()
        };
        assert!(n.validate().is_err());
        // Both the forward reference and the unowned Input gate it reads.
        let issues = n.check_structure();
        assert!(issues.contains(&StructuralIssue::ForwardRef { gate: 0, net: 1 }));
        assert!(issues.contains(&StructuralIssue::OrphanInputGate { net: NetId(1) }));
    }

    #[test]
    fn validate_catches_duplicate_port_names() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        b.output_bus("y", &[x[0]]);
        let mut n = b.finish();
        n.outputs.push(Port {
            name: "y".into(),
            nets: vec![x[1]],
        });
        assert!(matches!(
            n.check_structure()[..],
            [StructuralIssue::DuplicatePortName { output: true, .. }]
        ));
        // Same name across directions is fine.
        n.outputs[1].name = "x".into();
        assert!(n.validate().is_ok());
    }

    #[test]
    fn validate_catches_zero_width_port() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        b.output_bus("y", &x);
        let mut n = b.finish();
        n.outputs.push(Port {
            name: "empty".into(),
            nets: vec![],
        });
        assert!(matches!(
            n.check_structure()[..],
            [StructuralIssue::ZeroWidthPort { output: true, .. }]
        ));
    }

    #[test]
    fn validate_catches_orphan_and_shared_inputs() {
        // Output reads an Input gate that no input port owns.
        let mut orphan = Netlist {
            gates: vec![Gate::Input, Gate::Input],
            inputs: vec![Port {
                name: "a".into(),
                nets: vec![NetId(0)],
            }],
            outputs: vec![Port {
                name: "y".into(),
                nets: vec![NetId(1)],
            }],
            ..Netlist::default()
        };
        assert!(matches!(
            orphan.check_structure()[..],
            [StructuralIssue::OrphanInputGate { net: NetId(1) }]
        ));
        // Claiming the same Input bit from two ports is also rejected.
        orphan.inputs.push(Port {
            name: "b".into(),
            nets: vec![NetId(0), NetId(1)],
        });
        assert!(orphan
            .check_structure()
            .iter()
            .any(|i| matches!(i, StructuralIssue::SharedInputBit { net: NetId(0), .. })));
    }

    #[test]
    fn with_gate_replaced_allows_invalid_results() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let y = b.and(x[0], x[1]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        // Deliberately corrupt: the And now forward-references itself.
        let broken = n.with_gate_replaced(y.index(), Gate::And(y, y));
        assert!(broken.validate().is_err());
    }

    #[test]
    fn display_summary_mentions_ports() {
        let mut b = Builder::new();
        let x = b.input_bus("index", 5);
        b.output_bus("out", &x);
        let text = b.finish().to_string();
        assert!(text.contains("index"));
        assert!(text.contains("out"));
    }
}
