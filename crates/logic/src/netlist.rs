//! The netlist data model: primitive gates and named ports.

use std::fmt;

/// Identifier of a net (the output of one gate). Nets are dense indices
/// into [`Netlist::gates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A primitive gate. Every gate drives exactly one net.
///
/// The set is deliberately small — it is what the paper's comparator /
/// subtractor / one-hot-MUX structures decompose into, and it keeps the
/// LUT mapper honest (no macro-gates that would dodge technology mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Constant 0 or 1.
    Const(bool),
    /// Primary input bit (value supplied by the testbench).
    Input,
    /// Inverter.
    Not(NetId),
    /// 2-input AND.
    And(NetId, NetId),
    /// 2-input OR.
    Or(NetId, NetId),
    /// 2-input XOR.
    Xor(NetId, NetId),
    /// 2:1 multiplexer: output = if `sel` { `b` } else { `a` }.
    Mux {
        /// Select line.
        sel: NetId,
        /// Value when `sel = 0`.
        a: NetId,
        /// Value when `sel = 1`.
        b: NetId,
    },
    /// D flip-flop: output is the registered value; `d` is latched on
    /// every [`crate::Simulator::step`]. Reset value is `init`.
    Dff {
        /// Data input.
        d: NetId,
        /// Power-on / reset value.
        init: bool,
    },
}

impl Gate {
    /// The nets this gate reads.
    pub fn fanin(&self) -> impl Iterator<Item = NetId> {
        let (a, b, c) = match *self {
            Gate::Const(_) | Gate::Input => (None, None, None),
            Gate::Not(x) => (Some(x), None, None),
            Gate::And(x, y) | Gate::Or(x, y) | Gate::Xor(x, y) => (Some(x), Some(y), None),
            Gate::Mux { sel, a, b } => (Some(sel), Some(a), Some(b)),
            Gate::Dff { d, .. } => (Some(d), None, None),
        };
        [a, b, c].into_iter().flatten()
    }

    /// `true` for combinational gates (everything except `Input`, `Const`
    /// and `Dff`, whose outputs do not depend on the current-cycle wave).
    pub fn is_combinational(&self) -> bool {
        !matches!(self, Gate::Const(_) | Gate::Input | Gate::Dff { .. })
    }
}

/// A named bus port (list of nets, LSB first).
#[derive(Debug, Clone)]
pub struct Port {
    /// Port name, unique within its direction.
    pub name: String,
    /// Nets, least-significant bit first.
    pub nets: Vec<NetId>,
}

/// A complete circuit: gates in topological creation order plus named
/// input/output ports.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<Port>,
    pub(crate) outputs: Vec<Port>,
    /// Nets that belong to a dedicated carry chain (set by the builder's
    /// adder/subtractor combinators). The timing model charges these a
    /// fraction of a LUT delay, like the hardened carry logic of real
    /// FPGAs; everything else about them (simulation, LUT mapping) is
    /// unchanged.
    pub(crate) carry_nets: Vec<NetId>,
}

impl Netlist {
    /// All gates, in topological (creation) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (= number of nets).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Named input ports.
    pub fn input_ports(&self) -> &[Port] {
        &self.inputs
    }

    /// Named output ports.
    pub fn output_ports(&self) -> &[Port] {
        &self.outputs
    }

    /// Looks up an input port by name.
    pub fn input_port(&self, name: &str) -> Option<&Port> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Looks up an output port by name.
    pub fn output_port(&self, name: &str) -> Option<&Port> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Nets marked as carry-chain members by the builder.
    pub fn carry_nets(&self) -> &[NetId] {
        &self.carry_nets
    }

    /// Number of D flip-flops (the "registers" column of Tables III/IV).
    pub fn register_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Dff { .. }))
            .count()
    }

    /// Number of combinational gates.
    pub fn combinational_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_combinational()).count()
    }

    /// Liveness mask: a gate is live iff its value can reach an output
    /// port, possibly through registers. Dead gates still simulate but
    /// are excluded from resource estimation (synthesis tools sweep
    /// them), and the mutation tests skip them.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<usize> = Vec::new();
        for port in &self.outputs {
            for net in &port.nets {
                stack.push(net.index());
            }
        }
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut live[i], true) {
                continue;
            }
            for f in self.gates[i].fanin() {
                stack.push(f.index());
            }
        }
        live
    }

    /// Fanout count per net (how many gate inputs plus output-port bits
    /// read it).
    pub fn fanout(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.gates.len()];
        for g in &self.gates {
            for f in g.fanin() {
                fanout[f.index()] += 1;
            }
        }
        for port in &self.outputs {
            for net in &port.nets {
                fanout[net.index()] += 1;
            }
        }
        fanout
    }

    /// Combinational logic depth in *gate* levels: inputs, constants and
    /// DFF outputs are level 0; every combinational gate is one more than
    /// its deepest fanin. (LUT-level depth, which drives the Fmax model,
    /// lives in [`crate::tech`].)
    pub fn gate_depth(&self) -> usize {
        let mut level = vec![0usize; self.gates.len()];
        let mut max = 0;
        for (i, g) in self.gates.iter().enumerate() {
            if g.is_combinational() {
                level[i] = 1 + g.fanin().map(|f| level[f.index()]).max().unwrap_or(0);
                max = max.max(level[i]);
            }
        }
        max
    }

    /// Returns a copy with gate `i` replaced — the fault-injection hook
    /// used by the mutation tests to prove the differential harness
    /// actually detects broken circuits.
    ///
    /// # Panics
    /// Panics if the replacement would break topological validity.
    pub fn with_gate_replaced(&self, i: usize, gate: Gate) -> Netlist {
        let mut mutated = self.clone();
        mutated.gates[i] = gate;
        mutated
            .validate()
            .expect("mutation must preserve structural validity");
        mutated
    }

    /// Internal consistency check: every fanin references an earlier net
    /// (except `Dff.d`, which may reference any net — state breaks the
    /// cycle), and port nets are in range. Used by tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        for (i, g) in self.gates.iter().enumerate() {
            let allows_forward = matches!(g, Gate::Dff { .. });
            for f in g.fanin() {
                if f.index() >= self.gates.len() {
                    return Err(format!("gate {i} references out-of-range net {}", f.index()));
                }
                if !allows_forward && f.index() >= i {
                    return Err(format!(
                        "combinational gate {i} references non-earlier net {} (cycle?)",
                        f.index()
                    ));
                }
            }
        }
        for port in self.inputs.iter().chain(&self.outputs) {
            for net in &port.nets {
                if net.index() >= self.gates.len() {
                    return Err(format!("port {} references out-of-range net", port.name));
                }
            }
        }
        for port in &self.inputs {
            for net in &port.nets {
                if !matches!(self.gates[net.index()], Gate::Input) {
                    return Err(format!("input port {} maps to a non-Input gate", port.name));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist: {} gates ({} comb, {} regs), depth {} gate levels",
            self.len(),
            self.combinational_count(),
            self.register_count(),
            self.gate_depth()
        )?;
        for p in &self.inputs {
            writeln!(f, "  in  {:<12} [{}]", p.name, p.nets.len())?;
        }
        for p in &self.outputs {
            writeln!(f, "  out {:<12} [{}]", p.name, p.nets.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn fanin_iteration() {
        let g = Gate::Mux {
            sel: NetId(0),
            a: NetId(1),
            b: NetId(2),
        };
        let fanin: Vec<_> = g.fanin().collect();
        assert_eq!(fanin, vec![NetId(0), NetId(1), NetId(2)]);
        assert_eq!(Gate::Input.fanin().count(), 0);
        assert_eq!(Gate::Not(NetId(5)).fanin().count(), 1);
    }

    #[test]
    fn netlist_counts() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let reg = b.register_bus(&x, false);
        b.output_bus("y", &reg);
        let n = b.finish();
        assert_eq!(n.register_count(), 4);
        assert_eq!(n.combinational_count(), 0);
        assert_eq!(n.gate_depth(), 0);
        n.validate().unwrap();
    }

    #[test]
    fn depth_counts_longest_chain() {
        // XOR chain over distinct inputs (NOT chains would constant-fold).
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let mut cur = x[0];
        for &bit in &x[1..] {
            cur = b.xor(cur, bit);
        }
        b.output_bus("y", &[cur]);
        assert_eq!(b.finish().gate_depth(), 5);
    }

    #[test]
    fn validate_catches_forward_reference() {
        // Hand-build a broken netlist.
        let n = Netlist {
            gates: vec![Gate::Not(NetId(1)), Gate::Input],
            inputs: vec![],
            outputs: vec![],
            carry_nets: vec![],
        };
        assert!(n.validate().is_err());
    }

    #[test]
    fn display_summary_mentions_ports() {
        let mut b = Builder::new();
        let x = b.input_bus("index", 5);
        b.output_bus("out", &x);
        let text = b.finish().to_string();
        assert!(text.contains("index"));
        assert!(text.contains("out"));
    }
}
