//! Bit-accurate netlist simulation.
//!
//! Gates are stored in topological order, so a combinational settle is a
//! single forward pass. DFFs read their *state* during the pass and latch
//! their `d` input on [`Simulator::step`], which models one rising clock
//! edge — this is what lets the pipelined converter demonstrate the
//! paper's "one permutation per clock period" behaviour with latency `n`.

use crate::netlist::{Gate, Netlist, Port};
use hwperm_bignum::Ubig;

/// Looks up an input port, panicking with the port name and the
/// available ports (with widths) on a miss. Shared by the scalar
/// [`Simulator`] and the 64-lane [`crate::BatchSimulator`] so the two
/// front-ends can never drift apart on their diagnostics.
pub(crate) fn lookup_input_port<'a>(netlist: &'a Netlist, name: &str) -> &'a Port {
    netlist.input_port(name).unwrap_or_else(|| {
        let known: Vec<String> = netlist
            .input_ports()
            .iter()
            .map(|p| format!("{:?} ({} bits)", p.name, p.nets.len()))
            .collect();
        let known = if known.is_empty() {
            "none".to_string()
        } else {
            known.join(", ")
        };
        panic!("no input port named {name:?} (inputs: {known})")
    })
}

/// Checks that a driven value fits its port, panicking with the port
/// name and both widths otherwise. `value` is rendered lazily so the
/// hot path pays nothing for it.
pub(crate) fn assert_input_fits(
    name: &str,
    width: usize,
    value_bits: usize,
    value: impl FnOnce() -> String,
) {
    if value_bits > width {
        panic!(
            "value {} ({value_bits} bits) does not fit input port {name:?} ({width} bits)",
            value()
        );
    }
}

/// Evaluates a [`Netlist`].
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Netlist,
    /// Current value of every net.
    values: Vec<bool>,
    /// Registered state per gate index (only meaningful for `Dff`s).
    state: Vec<bool>,
}

impl Simulator {
    /// Creates a simulator with all inputs at 0 and DFFs at their reset
    /// values.
    pub fn new(netlist: Netlist) -> Self {
        let n = netlist.len();
        let mut state = vec![false; n];
        for (i, g) in netlist.gates().iter().enumerate() {
            if let Gate::Dff { init, .. } = g {
                state[i] = *init;
            }
        }
        Simulator {
            netlist,
            values: vec![false; n],
            state,
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Drives an input port with the low bits of `value` (LSB-first).
    ///
    /// # Panics
    /// Panics if the port does not exist or `value` does not fit its width.
    pub fn set_input(&mut self, name: &str, value: &Ubig) {
        let port = lookup_input_port(&self.netlist, name).clone();
        assert_input_fits(name, port.nets.len(), value.bit_len(), || value.to_string());
        for (i, net) in port.nets.iter().enumerate() {
            self.values[net.index()] = value.bit(i);
        }
    }

    /// Convenience wrapper over [`Simulator::set_input`] for small values.
    pub fn set_input_u64(&mut self, name: &str, value: u64) {
        self.set_input(name, &Ubig::from(value));
    }

    /// Combinational settle: one forward pass over the gate array.
    /// Input nets keep whatever was last driven; DFF nets present their
    /// registered state.
    pub fn eval(&mut self) {
        // Split borrows: walk indices so `values` can be written in place.
        for i in 0..self.netlist.len() {
            let v = match self.netlist.gates()[i] {
                Gate::Const(c) => c,
                Gate::Input => continue, // externally driven
                Gate::Not(x) => !self.values[x.index()],
                Gate::And(x, y) => self.values[x.index()] & self.values[y.index()],
                Gate::Or(x, y) => self.values[x.index()] | self.values[y.index()],
                Gate::Xor(x, y) => self.values[x.index()] ^ self.values[y.index()],
                Gate::Mux { sel, a, b } => {
                    if self.values[sel.index()] {
                        self.values[b.index()]
                    } else {
                        self.values[a.index()]
                    }
                }
                Gate::Dff { .. } => self.state[i],
            };
            self.values[i] = v;
        }
    }

    /// One clock cycle: combinational settle, then every DFF latches its
    /// `d` input. Inputs should be set *before* the call (they are what
    /// the flops sample at the edge).
    pub fn step(&mut self) {
        self.eval();
        for i in 0..self.netlist.len() {
            if let Gate::Dff { d, .. } = self.netlist.gates()[i] {
                self.state[i] = self.values[d.index()];
            }
        }
    }

    /// Resets all DFFs to their `init` values (values wave left stale
    /// until the next [`Simulator::eval`]).
    pub fn reset(&mut self) {
        for (i, g) in self.netlist.gates().iter().enumerate() {
            if let Gate::Dff { init, .. } = g {
                self.state[i] = *init;
            }
        }
    }

    /// Reads an output port as an integer (LSB-first). Call after
    /// [`Simulator::eval`] or [`Simulator::step`].
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn read_output(&self, name: &str) -> Ubig {
        let port = self
            .netlist
            .output_port(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        let mut out = Ubig::zero();
        for (i, net) in port.nets.iter().enumerate() {
            if self.values[net.index()] {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Reads a single net's current value (for structural debugging).
    pub fn probe(&self, net: crate::NetId) -> bool {
        self.values[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn combinational_passthrough() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        b.output_bus("y", &x);
        let mut sim = Simulator::new(b.finish());
        sim.set_input_u64("x", 0xA5);
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(0xA5));
    }

    #[test]
    fn pipeline_latency_two_stages() {
        // x -> DFF -> DFF -> y : value appears after exactly two steps.
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let r1 = b.register_bus(&x, false);
        let r2 = b.register_bus(&r1, false);
        b.output_bus("y", &r2);
        let mut sim = Simulator::new(b.finish());

        sim.set_input_u64("x", 7);
        sim.step(); // r1 <- 7
        assert_eq!(sim.read_output("y").to_u64(), Some(0));
        sim.set_input_u64("x", 3);
        sim.step(); // r1 <- 3, r2 <- 7
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(7));
        sim.step(); // r2 <- 3
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(3));
    }

    #[test]
    fn one_result_per_clock_throughput() {
        // A 3-deep pipeline fed a new value every cycle emits a new value
        // every cycle after the fill latency — the paper's headline
        // property.
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let mut bus = x;
        for _ in 0..3 {
            bus = b.register_bus(&bus, false);
        }
        b.output_bus("y", &bus);
        let mut sim = Simulator::new(b.finish());

        let feed: Vec<u64> = (10..30).collect();
        let mut seen = Vec::new();
        for (cycle, &v) in feed.iter().enumerate() {
            sim.set_input_u64("x", v);
            sim.step();
            sim.eval();
            if cycle >= 3 {
                seen.push(sim.read_output("y").to_u64().unwrap());
            }
        }
        // After the 3-cycle fill, outputs track inputs exactly one per clock.
        assert_eq!(seen, feed[1..feed.len() - 2].to_vec());
    }

    #[test]
    fn dff_init_values_respected() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let r = b.dff(x[0], true);
        b.output_bus("y", &[r]);
        let mut sim = Simulator::new(b.finish());
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(1));
        sim.set_input_u64("x", 0);
        sim.step();
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(0));
        sim.reset();
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(1));
    }

    #[test]
    fn dff_feedback_toggle() {
        // Classic divide-by-two: q <- NOT q every clock, built with the
        // deferred-DFF pattern the LFSRs use.
        let mut b = Builder::new();
        let q = b.dff_deferred(false);
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output_bus("q", &[q]);
        let mut sim = Simulator::new(b.finish());
        let mut seen = Vec::new();
        for _ in 0..6 {
            sim.eval();
            seen.push(sim.read_output("q").to_u64().unwrap());
            sim.step();
        }
        assert_eq!(seen, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn deferred_dff_holds_until_connected() {
        let mut b = Builder::new();
        let q = b.dff_deferred(true);
        b.output_bus("q", &[q]);
        let mut sim = Simulator::new(b.finish());
        for _ in 0..3 {
            sim.step();
            sim.eval();
            assert_eq!(sim.read_output("q").to_u64(), Some(1));
        }
    }

    #[test]
    #[should_panic(expected = "does not fit input port")]
    fn set_input_checks_width() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let nl = b.finish();
        let mut sim = Simulator::new(nl);
        sim.set_input_u64("x", 9);
    }

    #[test]
    #[should_panic(expected = "no input port")]
    fn unknown_port_panics() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = Simulator::new(b.finish());
        sim.set_input_u64("y", 0);
    }

    /// Captures the panic message from `f`, which must panic with a
    /// `String` or `&str` payload.
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = std::panic::catch_unwind(f).expect_err("closure should panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string")
    }

    #[test]
    fn set_input_panic_messages_name_port_and_width() {
        // Both failure paths must identify the offending port and its
        // width so a misdriven testbench is diagnosable from the message
        // alone. Pin the exact text: batch.rs shares these helpers, so a
        // drift here would silently change two APIs at once.
        let mut b = Builder::new();
        b.input_bus("x", 2);
        b.input_bus("sel", 1);
        let nl = b.finish();

        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output quiet
        let oversize = {
            let nl = nl.clone();
            panic_message(move || Simulator::new(nl).set_input_u64("x", 9))
        };
        let missing = {
            let nl = nl.clone();
            panic_message(move || Simulator::new(nl).set_input_u64("y", 0))
        };
        std::panic::set_hook(hook);

        assert_eq!(
            oversize,
            "value 9 (4 bits) does not fit input port \"x\" (2 bits)"
        );
        assert_eq!(
            missing,
            "no input port named \"y\" (inputs: \"x\" (2 bits), \"sel\" (1 bits))"
        );
    }
}
