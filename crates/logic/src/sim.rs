//! Bit-accurate netlist simulation.
//!
//! Since the tape refactor, the scalar simulator is a thin front-end
//! over the compiled [`SimProgram`]: construction lowers the netlist
//! once (levelized opcode stream, flat net slots), and per-instance
//! state is a single flat `bool` value array. A combinational settle is
//! one tape execution. DFFs read their *state slot* during the pass and
//! latch their `d` slot on [`Simulator::step`], which models one rising
//! clock edge — this is what lets the pipelined converter demonstrate
//! the paper's "one permutation per clock period" behaviour with
//! latency `n`.

use crate::netlist::{Netlist, Port};
use crate::program::SimProgram;
use hwperm_bignum::Ubig;
use std::sync::Arc;

/// Looks up an input port, panicking with the port name and the
/// available ports (with widths) on a miss. Shared by the scalar
/// [`Simulator`], the 64-lane [`crate::BatchSimulator`] and the
/// [`SimProgram`] slot maps so the front-ends can never drift apart on
/// their diagnostics.
pub(crate) fn lookup_input_port<'a>(netlist: &'a Netlist, name: &str) -> &'a Port {
    netlist.input_port(name).unwrap_or_else(|| {
        let known: Vec<String> = netlist
            .input_ports()
            .iter()
            .map(|p| format!("{:?} ({} bits)", p.name, p.nets.len()))
            .collect();
        let known = if known.is_empty() {
            "none".to_string()
        } else {
            known.join(", ")
        };
        panic!("no input port named {name:?} (inputs: {known})")
    })
}

/// Checks that a driven value fits its port, panicking with the port
/// name and both widths otherwise. `value` is rendered lazily so the
/// hot path pays nothing for it.
pub(crate) fn assert_input_fits(
    name: &str,
    width: usize,
    value_bits: usize,
    value: impl FnOnce() -> String,
) {
    if value_bits > width {
        panic!(
            "value {} ({value_bits} bits) does not fit input port {name:?} ({width} bits)",
            value()
        );
    }
}

/// Evaluates a [`Netlist`] by executing its compiled [`SimProgram`].
#[derive(Debug, Clone)]
pub struct Simulator {
    program: Arc<SimProgram>,
    /// Current value of every slot (inputs, constants and DFF state in
    /// the state region; one slot per tape op above it).
    values: Vec<bool>,
    /// Reusable two-phase latch buffer (one entry per DFF).
    scratch: Vec<bool>,
}

impl Simulator {
    /// Compiles the netlist and creates a simulator with all inputs at
    /// 0 and DFFs at their reset values. To share one compilation
    /// across many instances (or threads), compile once with
    /// [`SimProgram::compile_shared`] and use
    /// [`Simulator::from_program`].
    pub fn new(netlist: Netlist) -> Self {
        Self::from_program(SimProgram::compile_shared(netlist))
    }

    /// A simulator over an already-compiled (possibly shared) tape.
    /// Per-instance cost is one flat value array.
    pub fn from_program(program: Arc<SimProgram>) -> Self {
        let values = program.initial_values();
        Simulator {
            program,
            values,
            scratch: Vec::new(),
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.program.netlist()
    }

    /// The compiled tape this simulator executes.
    pub fn program(&self) -> &Arc<SimProgram> {
        &self.program
    }

    /// Drives an input port with the low bits of `value` (LSB-first).
    ///
    /// # Panics
    /// Panics if the port does not exist or `value` does not fit its width.
    pub fn set_input(&mut self, name: &str, value: &Ubig) {
        let slots = self.program.input_slots(name);
        assert_input_fits(name, slots.len(), value.bit_len(), || value.to_string());
        for (i, &slot) in slots.iter().enumerate() {
            self.values[slot as usize] = value.bit(i);
        }
    }

    /// Convenience wrapper over [`Simulator::set_input`] for small values.
    pub fn set_input_u64(&mut self, name: &str, value: u64) {
        self.set_input(name, &Ubig::from(value));
    }

    /// Combinational settle: one pass over the compiled tape. Input
    /// slots keep whatever was last driven; DFF slots present their
    /// registered state.
    pub fn eval(&mut self) {
        self.program.exec(&mut self.values);
    }

    /// One clock cycle: combinational settle, then every DFF latches its
    /// `d` input. Inputs should be set *before* the call (they are what
    /// the flops sample at the edge).
    pub fn step(&mut self) {
        self.eval();
        self.program.latch(&mut self.values, &mut self.scratch);
    }

    /// Resets all DFFs to their `init` values (other slots stay stale
    /// until the next [`Simulator::eval`]).
    pub fn reset(&mut self) {
        self.program.reset(&mut self.values);
    }

    /// Reads an output port as an integer (LSB-first). Call after
    /// [`Simulator::eval`] or [`Simulator::step`].
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn read_output(&self, name: &str) -> Ubig {
        let slots = self.program.output_slots(name);
        let mut out = Ubig::zero();
        for (i, &slot) in slots.iter().enumerate() {
            if self.values[slot as usize] {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Reads a single net's current value (for structural debugging).
    pub fn probe(&self, net: crate::NetId) -> bool {
        self.values[self.program.slot(net)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn combinational_passthrough() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        b.output_bus("y", &x);
        let mut sim = Simulator::new(b.finish());
        sim.set_input_u64("x", 0xA5);
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(0xA5));
    }

    #[test]
    fn pipeline_latency_two_stages() {
        // x -> DFF -> DFF -> y : value appears after exactly two steps.
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let r1 = b.register_bus(&x, false);
        let r2 = b.register_bus(&r1, false);
        b.output_bus("y", &r2);
        let mut sim = Simulator::new(b.finish());

        sim.set_input_u64("x", 7);
        sim.step(); // r1 <- 7
        assert_eq!(sim.read_output("y").to_u64(), Some(0));
        sim.set_input_u64("x", 3);
        sim.step(); // r1 <- 3, r2 <- 7
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(7));
        sim.step(); // r2 <- 3
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(3));
    }

    #[test]
    fn one_result_per_clock_throughput() {
        // A 3-deep pipeline fed a new value every cycle emits a new value
        // every cycle after the fill latency — the paper's headline
        // property.
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let mut bus = x;
        for _ in 0..3 {
            bus = b.register_bus(&bus, false);
        }
        b.output_bus("y", &bus);
        let mut sim = Simulator::new(b.finish());

        let feed: Vec<u64> = (10..30).collect();
        let mut seen = Vec::new();
        for (cycle, &v) in feed.iter().enumerate() {
            sim.set_input_u64("x", v);
            sim.step();
            sim.eval();
            if cycle >= 3 {
                seen.push(sim.read_output("y").to_u64().unwrap());
            }
        }
        // After the 3-cycle fill, outputs track inputs exactly one per clock.
        assert_eq!(seen, feed[1..feed.len() - 2].to_vec());
    }

    #[test]
    fn dff_init_values_respected() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let r = b.dff(x[0], true);
        b.output_bus("y", &[r]);
        let mut sim = Simulator::new(b.finish());
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(1));
        sim.set_input_u64("x", 0);
        sim.step();
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(0));
        sim.reset();
        sim.eval();
        assert_eq!(sim.read_output("y").to_u64(), Some(1));
    }

    #[test]
    fn dff_feedback_toggle() {
        // Classic divide-by-two: q <- NOT q every clock, built with the
        // deferred-DFF pattern the LFSRs use.
        let mut b = Builder::new();
        let q = b.dff_deferred(false);
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output_bus("q", &[q]);
        let mut sim = Simulator::new(b.finish());
        let mut seen = Vec::new();
        for _ in 0..6 {
            sim.eval();
            seen.push(sim.read_output("q").to_u64().unwrap());
            sim.step();
        }
        assert_eq!(seen, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn deferred_dff_holds_until_connected() {
        let mut b = Builder::new();
        let q = b.dff_deferred(true);
        b.output_bus("q", &[q]);
        let mut sim = Simulator::new(b.finish());
        for _ in 0..3 {
            sim.step();
            sim.eval();
            assert_eq!(sim.read_output("q").to_u64(), Some(1));
        }
    }

    #[test]
    fn instances_share_one_compiled_program() {
        use crate::program::SimProgram;
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let program = SimProgram::compile_shared(b.finish());
        let mut a = Simulator::from_program(Arc::clone(&program));
        let mut c = Simulator::from_program(Arc::clone(&program));
        a.set_input_u64("x", 3);
        c.set_input_u64("x", 9);
        a.eval();
        c.eval();
        assert_eq!(a.read_output("y").to_u64(), Some(3));
        assert_eq!(c.read_output("y").to_u64(), Some(9));
        assert!(Arc::ptr_eq(a.program(), c.program()));
        assert_eq!(Arc::strong_count(&program), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit input port")]
    fn set_input_checks_width() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let nl = b.finish();
        let mut sim = Simulator::new(nl);
        sim.set_input_u64("x", 9);
    }

    #[test]
    #[should_panic(expected = "no input port")]
    fn unknown_port_panics() {
        let mut b = Builder::new();
        b.input_bus("x", 2);
        let mut sim = Simulator::new(b.finish());
        sim.set_input_u64("y", 0);
    }

    /// Captures the panic message from `f`, which must panic with a
    /// `String` or `&str` payload.
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = std::panic::catch_unwind(f).expect_err("closure should panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string")
    }

    #[test]
    fn set_input_panic_messages_name_port_and_width() {
        // Both failure paths must identify the offending port and its
        // width so a misdriven testbench is diagnosable from the message
        // alone. Pin the exact text: batch.rs shares these helpers, so a
        // drift here would silently change two APIs at once.
        let mut b = Builder::new();
        b.input_bus("x", 2);
        b.input_bus("sel", 1);
        let nl = b.finish();

        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output quiet
        let oversize = {
            let nl = nl.clone();
            panic_message(move || Simulator::new(nl).set_input_u64("x", 9))
        };
        let missing = {
            let nl = nl.clone();
            panic_message(move || Simulator::new(nl).set_input_u64("y", 0))
        };
        std::panic::set_hook(hook);

        assert_eq!(
            oversize,
            "value 9 (4 bits) does not fit input port \"x\" (2 bits)"
        );
        assert_eq!(
            missing,
            "no input port named \"y\" (inputs: \"x\" (2 bits), \"sel\" (1 bits))"
        );
    }
}
