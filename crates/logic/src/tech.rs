//! FPGA technology estimation: the substitute for the Quartus synthesis
//! reports behind the paper's Tables III and IV.
//!
//! Three estimates are produced from a [`Netlist`]:
//!
//! 1. **LUT mapping** — greedy cone packing: walking gates in topological
//!    order, each combinational gate tries to absorb any single-fanout
//!    combinational fanin whose support keeps the merged cone within `K`
//!    inputs (`K = 6` for the Stratix IV's fracturable ALUT). The result
//!    is a LUT count and the per-input-count histogram the paper's
//!    tables break out ("# of LUTs of Various Inputs").
//! 2. **ALM packing** — a Stratix IV ALM holds one 6-input function, or
//!    a 5-input + an independent 3-input function, or two independent
//!    ≤4-input functions. The estimate packs the histogram greedily under
//!    those rules ("Est. # of Packed ALMs").
//! 3. **Fmax** — a levelized LUT-depth delay model
//!    `T = t_lut·depth + t_route·(depth−1) + t_reg`; the paper's tables
//!    show Fmax falling with `n` because the per-stage comparator and
//!    subtractor chains deepen, which the model reproduces.
//!
//! These are *estimates of shape*, not Quartus replays: absolute counts
//! differ from the paper's, growth rates and orderings should not.

use crate::netlist::Netlist;
use std::fmt;

/// Maximum LUT input count for the modeled device (Stratix IV ALUT).
pub const LUT_K: usize = 6;

/// Delay model constants, loosely calibrated to a mid-speed-grade
/// Stratix IV: per-LUT delay, per-hop routing delay, register micro
/// delays (all nanoseconds).
#[derive(Debug, Clone, Copy)]
pub struct TimingModel {
    /// Combinational delay through one LUT (ns).
    pub t_lut: f64,
    /// Routing delay per LUT-to-LUT hop (ns).
    pub t_route: f64,
    /// Register clock-to-out plus setup (ns).
    pub t_reg: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        // ~0.4 ns LUT, ~0.6 ns routing, ~0.7 ns register overhead gives
        // shallow pipelines in the several-hundred-MHz range, matching
        // the magnitude of Tables III/IV.
        TimingModel {
            t_lut: 0.4,
            t_route: 0.6,
            t_reg: 0.7,
        }
    }
}

impl TimingModel {
    /// Maximum clock frequency in MHz for a given LUT depth.
    pub fn fmax_mhz(&self, lut_depth: usize) -> f64 {
        self.fmax_mhz_f(lut_depth as f64)
    }

    /// Fractional-depth variant (used by the carry-aware estimate).
    pub fn fmax_mhz_f(&self, lut_depth: f64) -> f64 {
        let hops = (lut_depth - 1.0).max(0.0);
        let period = self.t_reg + self.t_lut * lut_depth + self.t_route * hops;
        1000.0 / period
    }
}

/// Resource usage summary for one netlist — the row format of the
/// paper's Tables III/IV.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    /// LUT count by input arity; index `i` holds the number of `i`-input
    /// LUTs (indices 0 and 1 are merged into index 1: buffers/inverters
    /// that survive mapping).
    pub luts_by_inputs: [usize; LUT_K + 1],
    /// Total mapped LUTs.
    pub total_luts: usize,
    /// Estimated packed ALMs (Stratix IV pairing rules).
    pub est_alms: usize,
    /// D flip-flop count.
    pub registers: usize,
    /// Critical path in LUT levels (register/input to register/output).
    pub lut_depth: usize,
    /// Critical path with carry chains at [`CARRY_LEVEL_COST`] per hop.
    pub carry_aware_depth: f64,
    /// Modeled maximum clock frequency (MHz), every hop at full cost.
    pub fmax_mhz: f64,
    /// Modeled Fmax with hardened carry chains — closer to what Quartus
    /// reports for arithmetic-heavy designs like these.
    pub fmax_carry_mhz: f64,
    /// Raw gate count before mapping (structural size).
    pub gate_count: usize,
}

impl ResourceReport {
    /// Analyzes a netlist under the default timing model.
    pub fn of(netlist: &Netlist) -> ResourceReport {
        Self::with_model(netlist, TimingModel::default())
    }

    /// Analyzes a netlist under a custom timing model.
    pub fn with_model(netlist: &Netlist, model: TimingModel) -> ResourceReport {
        let live = netlist.live_mask();
        let registers = netlist
            .gates()
            .iter()
            .enumerate()
            .filter(|(i, g)| matches!(g, crate::Gate::Dff { .. }) && live[*i])
            .count();
        let mapping = map_luts(netlist);
        let mut luts_by_inputs = [0usize; LUT_K + 1];
        for support in mapping.roots.values() {
            let arity = support.len().clamp(1, LUT_K);
            luts_by_inputs[arity] += 1;
        }
        let total_luts = mapping.roots.len();
        let est_alms = pack_alms(&luts_by_inputs);
        let lut_depth = mapping.depth;
        let carry_aware_depth = mapping.carry_aware_depth;
        ResourceReport {
            luts_by_inputs,
            total_luts,
            est_alms,
            registers,
            lut_depth,
            carry_aware_depth,
            fmax_mhz: model.fmax_mhz(lut_depth.max(1)),
            fmax_carry_mhz: model.fmax_mhz_f(carry_aware_depth.max(0.5)),
            gate_count: netlist.len(),
        }
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LUTs: {} (by inputs:", self.total_luts)?;
        for arity in 1..=LUT_K {
            if self.luts_by_inputs[arity] > 0 {
                write!(f, " {}x{}-in", self.luts_by_inputs[arity], arity)?;
            }
        }
        write!(
            f,
            "), ALMs ≈ {}, regs {}, depth {} LUT levels ({:.1} carry-aware), Fmax ≈ {:.0} MHz ({:.0} with carry chains)",
            self.est_alms,
            self.registers,
            self.lut_depth,
            self.carry_aware_depth,
            self.fmax_mhz,
            self.fmax_carry_mhz
        )
    }
}

/// Result of LUT cone packing.
struct LutMapping {
    /// LUT roots: gate index → support (input nets: PIs, constants, DFF
    /// outputs, or other roots).
    roots: std::collections::BTreeMap<usize, Vec<u32>>,
    /// Critical path in LUT levels.
    depth: usize,
    /// Critical path where carry-chain roots cost [`CARRY_LEVEL_COST`]
    /// levels instead of 1 (hardened carry logic).
    carry_aware_depth: f64,
}

/// Fraction of a LUT+routing hop charged to a carry-chain element
/// (Stratix-class dedicated carry: ~70 ps vs ~1 ns for a general hop).
pub const CARRY_LEVEL_COST: f64 = 0.08;

/// Greedy topological cone packing into ≤`LUT_K`-input LUTs. Dead gates
/// (unreachable from any output) are skipped, matching the sweep every
/// synthesis tool performs.
fn map_luts(netlist: &Netlist) -> LutMapping {
    use std::collections::BTreeMap;
    let gates = netlist.gates();
    let fanout = netlist.fanout();
    let live = netlist.live_mask();
    // For each gate: the support of the LUT whose *internal* logic ends at
    // this gate (sorted, deduplicated net indices).
    let mut support: Vec<Vec<u32>> = vec![Vec::new(); gates.len()];
    // Whether the gate was absorbed into a consumer's LUT.
    let mut absorbed = vec![false; gates.len()];

    for (i, g) in gates.iter().enumerate() {
        if !g.is_combinational() || !live[i] {
            continue;
        }
        let fanins: Vec<usize> = g.fanin().map(|f| f.index()).collect();
        let mergeable: Vec<bool> = fanins
            .iter()
            .map(|&fi| gates[fi].is_combinational() && fanout[fi] == 1)
            .collect();
        let mut sup: Vec<u32> = Vec::new();
        // Non-mergeable fanins are direct LUT inputs.
        for (&fi, &m) in fanins.iter().zip(&mergeable) {
            if !m && !sup.contains(&(fi as u32)) {
                sup.push(fi as u32);
            }
        }
        // Mergeable fanins: absorb the cone only if the merged support,
        // plus one reserved slot per mergeable fanin still to come, stays
        // within K (otherwise a later fanin could overflow the LUT).
        let merge_order: Vec<usize> = (0..fanins.len()).filter(|&j| mergeable[j]).collect();
        for (pos, &j) in merge_order.iter().enumerate() {
            let fi = fanins[j];
            let reserve = merge_order.len() - pos - 1;
            let mut merged = sup.clone();
            for &s in &support[fi] {
                if !merged.contains(&s) {
                    merged.push(s);
                }
            }
            if merged.len() + reserve <= LUT_K {
                sup = merged;
                absorbed[fi] = true;
            } else if !sup.contains(&(fi as u32)) {
                sup.push(fi as u32);
            }
        }
        sup.sort_unstable();
        debug_assert!(sup.len() <= LUT_K, "packed LUT exceeds {LUT_K} inputs");
        support[i] = sup;
    }

    // Roots = live combinational gates not absorbed.
    let mut roots: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
    for (i, g) in gates.iter().enumerate() {
        if g.is_combinational() && live[i] && !absorbed[i] {
            roots.insert(i, support[i].clone());
        }
    }

    // LUT-level depth: level of a root = 1 + max level of its support
    // (support entries are PIs/consts/DFFs at level 0, or earlier roots).
    // The carry-aware variant charges carry-chain roots a fraction of a
    // level, modeling hardened carry logic.
    let mut is_carry = vec![false; gates.len()];
    for c in netlist.carry_nets() {
        is_carry[c.index()] = true;
    }
    let mut level = vec![0usize; gates.len()];
    let mut wlevel = vec![0f64; gates.len()];
    let mut depth = 0;
    let mut carry_aware_depth = 0f64;
    for (&i, sup) in &roots {
        let base = sup.iter().map(|&s| level[s as usize]).max().unwrap_or(0);
        level[i] = 1 + base;
        depth = depth.max(level[i]);
        let wbase = sup.iter().map(|&s| wlevel[s as usize]).fold(0f64, f64::max);
        wlevel[i] = wbase + if is_carry[i] { CARRY_LEVEL_COST } else { 1.0 };
        carry_aware_depth = carry_aware_depth.max(wlevel[i]);
    }
    LutMapping {
        roots,
        depth,
        carry_aware_depth,
    }
}

/// Greedy Stratix-IV-style ALM packing from a LUT-arity histogram:
/// a 6-LUT fills an ALM; a 5-LUT pairs with a ≤3-LUT; ≤4-LUTs pair up.
fn pack_alms(hist: &[usize; LUT_K + 1]) -> usize {
    let mut alms = hist[6];
    let mut fives = hist[5];
    let mut small = hist[1] + hist[2] + hist[3]; // can share with a 5-LUT
    let mut fours = hist[4];
    // Pair each 5-LUT with a small LUT when available.
    let paired = fives.min(small);
    alms += paired;
    fives -= paired;
    small -= paired;
    // Remaining 5-LUTs each take a whole ALM.
    alms += fives;
    // Remaining ≤4-input LUTs pack two per ALM.
    let rest = small + fours;
    alms += rest.div_ceil(2);
    fours = 0;
    let _ = fours;
    alms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;
    use hwperm_bignum::Ubig;

    #[test]
    fn empty_netlist_report() {
        let b = Builder::new();
        let r = ResourceReport::of(&b.finish());
        assert_eq!(r.total_luts, 0);
        assert_eq!(r.registers, 0);
        assert_eq!(r.lut_depth, 0);
    }

    #[test]
    fn single_and_gate_is_one_two_input_lut() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let y = b.and(x[0], x[1]);
        b.output_bus("y", &[y]);
        let r = ResourceReport::of(&b.finish());
        assert_eq!(r.total_luts, 1);
        assert_eq!(r.luts_by_inputs[2], 1);
        assert_eq!(r.lut_depth, 1);
    }

    #[test]
    fn chain_of_ands_packs_into_single_lut() {
        // 5 chained 2-input ANDs over 6 inputs: exactly one 6-LUT.
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let mut acc = x[0];
        for &bit in &x[1..] {
            acc = b.and(acc, bit);
        }
        b.output_bus("y", &[acc]);
        let r = ResourceReport::of(&b.finish());
        assert_eq!(r.total_luts, 1, "{r}");
        assert_eq!(r.luts_by_inputs[6], 1);
        assert_eq!(r.lut_depth, 1);
    }

    #[test]
    fn seven_input_chain_needs_two_luts_two_levels() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 7);
        let mut acc = x[0];
        for &bit in &x[1..] {
            acc = b.and(acc, bit);
        }
        b.output_bus("y", &[acc]);
        let r = ResourceReport::of(&b.finish());
        assert_eq!(r.total_luts, 2, "{r}");
        assert_eq!(r.lut_depth, 2);
    }

    #[test]
    fn shared_fanout_is_not_duplicated() {
        // g = a&b feeds two consumers: it must be its own LUT, not be
        // absorbed twice.
        let mut b = Builder::new();
        let x = b.input_bus("x", 3);
        let g = b.and(x[0], x[1]);
        let y1 = b.or(g, x[2]);
        let y2 = b.xor(g, x[2]);
        b.output_bus("y1", &[y1]);
        b.output_bus("y2", &[y2]);
        let r = ResourceReport::of(&b.finish());
        assert_eq!(r.total_luts, 3, "{r}");
    }

    #[test]
    fn registers_break_combinational_cones() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let g = b.and(x[0], x[1]);
        let q = b.dff(g, false);
        let h = b.or(q, x[0]);
        b.output_bus("y", &[h]);
        let r = ResourceReport::of(&b.finish());
        assert_eq!(r.registers, 1);
        assert_eq!(r.total_luts, 2);
        assert_eq!(r.lut_depth, 1, "each side of the register is depth 1");
    }

    #[test]
    fn fmax_decreases_with_depth() {
        let m = TimingModel::default();
        assert!(m.fmax_mhz(1) > m.fmax_mhz(3));
        assert!(m.fmax_mhz(3) > m.fmax_mhz(10));
        // Single-level logic lands in the plausible FPGA range.
        let f1 = m.fmax_mhz(1);
        assert!((300.0..1000.0).contains(&f1), "{f1}");
    }

    #[test]
    fn alm_packing_rules() {
        // 2 six-LUTs = 2 ALMs.
        assert_eq!(pack_alms(&[0, 0, 0, 0, 0, 0, 2]), 2);
        // A 5-LUT + a 3-LUT share one ALM.
        assert_eq!(pack_alms(&[0, 0, 0, 1, 0, 1, 0]), 1);
        // Two 4-LUTs share one ALM; three need two.
        assert_eq!(pack_alms(&[0, 0, 0, 0, 2, 0, 0]), 1);
        assert_eq!(pack_alms(&[0, 0, 0, 0, 3, 0, 0]), 2);
        // A lone 5-LUT still takes an ALM.
        assert_eq!(pack_alms(&[0, 0, 0, 0, 0, 1, 0]), 1);
    }

    #[test]
    fn carry_chains_flatten_adder_depth() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 32);
        let y = b.input_bus("y", 32);
        let (s, _) = b.add(&x, &y);
        b.output_bus("s", &s);
        let r = ResourceReport::of(&b.finish());
        // Plain depth walks the whole 32-bit ripple; carry-aware depth
        // collapses it to ~1 LUT + 32 cheap carry hops.
        assert!(r.lut_depth >= 30, "{r}");
        assert!(r.carry_aware_depth < 8.0, "{r}");
        assert!(r.fmax_carry_mhz > 2.0 * r.fmax_mhz, "{r}");
    }

    #[test]
    fn comparator_chain_is_carry_marked() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 24);
        let c = b.ge_const(&x, &Ubig::from(0xABCDEFu64));
        b.output_bus("c", &[c]);
        let nl = b.finish();
        assert!(!nl.carry_nets().is_empty());
        let r = ResourceReport::of(&nl);
        assert!(r.carry_aware_depth < r.lut_depth as f64, "{r}");
    }

    #[test]
    fn non_arithmetic_logic_has_equal_depths() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let mut acc = x[0];
        for &bit in &x[1..] {
            acc = b.xor(acc, bit);
        }
        b.output_bus("y", &[acc]);
        let r = ResourceReport::of(&b.finish());
        assert_eq!(r.carry_aware_depth, r.lut_depth as f64);
    }

    #[test]
    fn adder_resources_scale_linearly() {
        let luts_for = |w: usize| {
            let mut b = Builder::new();
            let x = b.input_bus("x", w);
            let y = b.input_bus("y", w);
            let (s, _) = b.add(&x, &y);
            b.output_bus("s", &s);
            ResourceReport::of(&b.finish()).total_luts
        };
        let l8 = luts_for(8);
        let l16 = luts_for(16);
        let l32 = luts_for(32);
        assert!(l16 > l8 && l32 > l16);
        // Ripple adders are O(w): doubling width should roughly double LUTs.
        let ratio = l32 as f64 / l16 as f64;
        assert!((1.5..=2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn comparator_counts_grow_with_constant_width() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 16);
        let c = b.ge_const(&x, &Ubig::from(12345u64));
        b.output_bus("c", &[c]);
        let r = ResourceReport::of(&b.finish());
        assert!(r.total_luts >= 2, "{r}");
        assert!(r.total_luts <= 16, "chain should pack well: {r}");
    }

    #[test]
    fn report_display_is_informative() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, _) = b.add(&x, &y);
        let reg = b.register_bus(&s, false);
        b.output_bus("s", &reg);
        let text = ResourceReport::of(&b.finish()).to_string();
        assert!(text.contains("LUTs"));
        assert!(text.contains("regs 4"));
        assert!(text.contains("MHz"));
    }
}
