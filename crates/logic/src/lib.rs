#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Gate-level hardware substrate.
//!
//! The paper evaluates its circuits on an SRC-6 reconfigurable computer
//! (Virtex-II Pro) and reports synthesis results from an Altera
//! Stratix IV. Neither is available, so this crate supplies the
//! substitute substrate (see DESIGN.md §2):
//!
//! - [`Netlist`]: a flat array of primitive gates (`Const`, `Input`,
//!   `Not`, `And`, `Or`, `Xor`, `Mux`, `Dff`) with named input/output
//!   bus ports. Construction order is topological by design — a gate can
//!   only reference already-created nets — so combinational evaluation
//!   is a single in-order pass.
//! - [`Builder`]: bus-level combinators (ripple adders/subtractors,
//!   constant comparators, one-hot and binary muxes, decoders, shift-add
//!   constant multipliers, register ranks) used by `hwperm-circuits` to
//!   assemble the paper's Fig. 1/2/3 structures gate-by-gate.
//! - [`SimProgram`]: a compile-once, run-anywhere simulation tape — the
//!   netlist lowered into an immutable, levelized structure-of-arrays
//!   opcode stream with flat value slots, precomputed port slot maps and
//!   DFF slot pairs. Both simulators execute it; `Arc<SimProgram>` lets
//!   many instances (including worker threads in `hwperm-verify`) share
//!   one compilation.
//! - [`Simulator`]: bit-accurate evaluation; [`Simulator::step`] models
//!   one clock edge (combinational settle, then DFFs latch), so
//!   pipelined circuits exhibit their real latency and one-result-per-
//!   clock throughput.
//! - [`BatchSimulator`]: the word-level counterpart — the same tape run
//!   at `u64` instead of `bool`, each of the [`LANES`] bit positions an
//!   independent test vector, so a single forward pass simulates 64
//!   input vectors at once. The exhaustive verification stack
//!   (`hwperm-verify`) is built on it.
//! - [`tech`]: the stand-in for the FPGA tool reports behind Tables
//!   III/IV — greedy ≤6-input LUT cone packing, a Stratix-IV-style ALM
//!   packing estimate, register counts, and a logic-depth-based Fmax
//!   model.
//!
//! ```
//! use hwperm_logic::{Builder, Simulator};
//! use hwperm_bignum::Ubig;
//!
//! let mut b = Builder::new();
//! let a = b.input_bus("a", 8);
//! let c = b.input_bus("b", 8);
//! let (sum, _carry) = b.add(&a, &c);
//! b.output_bus("sum", &sum);
//!
//! let mut sim = Simulator::new(b.finish());
//! sim.set_input("a", &Ubig::from(37u64));
//! sim.set_input("b", &Ubig::from(5u64));
//! sim.eval();
//! assert_eq!(sim.read_output("sum").to_u64(), Some(42));
//! ```

mod batch;
pub mod blif;
mod builder;
mod buses;
mod netlist;
mod program;
mod sim;
pub mod tech;
pub mod vcd;
pub mod verilog;

pub use batch::{BatchSim, BatchSimulator, LANES};
pub use blif::to_blif;
pub use builder::{Builder, Bus};
pub use netlist::{Gate, NetId, Netlist, Port, StructuralIssue};
pub use program::{DffSlotPair, SimProgram, SimWord, TapeOp, TapeStats, Wide, W256, W512};
pub use sim::Simulator;
pub use tech::{ResourceReport, TimingModel};
pub use vcd::Tracer;
pub use verilog::{to_testbench, to_verilog};
