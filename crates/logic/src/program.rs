//! The compiled simulation tape: a [`Netlist`] lowered once into an
//! immutable, levelized, structure-of-arrays gate program that the
//! scalar [`crate::Simulator`] and the word-level
//! [`crate::BatchSimulator`] execute.
//!
//! Motivation: the original simulators re-walked the `Netlist` on every
//! `eval`, paying a `Gate` enum match plus `NetId` indirection per gate
//! per pass, and each simulator instance owned a full `Netlist` clone.
//! The tape moves all of that to compile time:
//!
//! - **Levelized opcode stream** — combinational gates are stably
//!   sorted by logic level (then creation order), so the tape is a flat
//!   `while`-free instruction sequence; `Const`/`Input`/`Dff` gates are
//!   excluded entirely (constants are baked into the initial value
//!   array, inputs are written by the testbench, DFF outputs are state).
//! - **Flat net slots** — every net is renumbered into a dense slot
//!   space: state slots first (inputs, constants, DFF outputs, in
//!   creation order), then one slot per tape op *in tape order*, so op
//!   `j` always writes slot `comb_base + j` and the wave fills the
//!   value array sequentially.
//! - **Precomputed port slot maps** — input/output port names resolve
//!   to slot vectors once, at compile time.
//! - **DFF slot pairs** — `step` latches through a `(q, d)` slot-pair
//!   list; no gate array scan.
//!
//! Two axes push the tape further (ROADMAP item 2, "the next 3-5x"):
//!
//! - **Wide words** — the tape is generic over [`SimWord`], so the same
//!   op stream settles 1 (`bool`), 64 (`u64`), 256 ([`W256`]) or 512
//!   ([`W512`]) independent simulations per pass. The wide words are
//!   plain `[u64; N]` element-wise ops — safe code the compiler
//!   autovectorizes — so no `unsafe` and no SIMD intrinsics enter the
//!   crate.
//! - **Opcode fusion** — [`SimProgram::compile_fused`] runs a rewrite
//!   pass that folds `Not` gates into their consumers as negated-input
//!   opcodes (`AndNot`, `OrNot`, `Nand`, `Nor`, `Xnor`, `Mux` select
//!   inversion) and collapses one level of pure `And`/`Or` chains into
//!   three-input ops (`And3`, `Or3`), shrinking both the op count and
//!   the number of value slots the wave touches. Fusion only elides a
//!   net when it is *unobservable* (not an output-port bit, not a DFF
//!   data input) and every consumer can absorb it, so port reads and
//!   `step` are unaffected; probing an elided net panics. The default
//!   [`SimProgram::compile`] never fuses — analyzers that map nets to
//!   ops one-for-one (fault-site resolution in `hwperm-faults`, VCD
//!   tracing, CNF encoding of a specific netlist shape) keep the
//!   canonical tape.
//! - **Level-blocked execution** — [`SimProgram::exec`] walks the tape
//!   in precomputed blocks of consecutive levels sized so one block's
//!   op metadata and wide-word operands fit in L1, instead of one
//!   monolithic sweep. Any ascending contiguous segmentation of the
//!   tape is semantically identical (see [`SimProgram::exec_range`]),
//!   so blocking is purely a locality decision; oversized levels are
//!   split at the budget boundary.
//!
//! The program is immutable after compilation and intended to be shared
//! across threads via `Arc<SimProgram>`: per-simulator state shrinks to
//! one flat value array (one [`SimWord`] per slot), so a thread-sharded
//! verifier spawns workers by cloning an `Arc` instead of a `Netlist`.
//!
//! Compilation requires a structurally valid netlist (see
//! [`Netlist::validate`]): gate fanin must be topologically ordered
//! (only `Dff.d` may look forward). Out-of-range references panic at
//! compile time; behaviour on combinational forward-references is
//! unspecified (the lint engine exists to reject those before they get
//! here).

use crate::netlist::{Gate, NetId, Netlist, Port};
use std::ops::{BitAnd, BitOr, BitXor, Not};
use std::sync::Arc;

/// A value domain the tape can execute over: `bool` (one simulation),
/// `u64` (64 bit-parallel lanes), or a [`Wide`] word ([`W256`]/[`W512`]
/// — 256/512 lanes). `Mux` lowers to `(sel & b) | (!sel & a)`, which is
/// exact in every domain.
///
/// Lane accessors let width-generic drivers (batch testbenches,
/// exhaustive sweeps, fault campaigns) pack per-simulation bits into a
/// word and pull individual lanes back out without knowing the concrete
/// width.
pub trait SimWord:
    Copy
    + PartialEq
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + 'static
{
    /// Number of independent simulation lanes a word carries.
    const LANES: usize;

    /// The value with every lane set to `bit`.
    fn splat(bit: bool) -> Self;

    /// The all-lanes-zero value.
    #[inline]
    fn zero() -> Self {
        Self::splat(false)
    }

    /// Reads one lane.
    ///
    /// # Panics
    /// Panics if `lane >= Self::LANES`.
    fn lane(self, lane: usize) -> bool;

    /// Writes one lane, leaving the others untouched.
    ///
    /// # Panics
    /// Panics if `lane >= Self::LANES`.
    fn set_lane(&mut self, lane: usize, bit: bool);

    /// The value with only `lane` set — a single-lane mask.
    ///
    /// # Panics
    /// Panics if `lane >= Self::LANES`.
    fn lane_one(lane: usize) -> Self {
        let mut w = Self::zero();
        w.set_lane(lane, true);
        w
    }

    /// The value with the low `count` lanes set — the live-lane mask of
    /// a partially filled batch.
    ///
    /// # Panics
    /// Panics if `count > Self::LANES`.
    fn mask_lanes(count: usize) -> Self;

    /// `true` if any lane is set.
    #[inline]
    fn any(self) -> bool {
        self != Self::zero()
    }

    /// Index of the lowest set lane, or `None` for an all-zero word.
    /// Deterministic lowest-first order is what keeps first-mismatch
    /// witnesses identical across widths and worker counts.
    fn first_lane(self) -> Option<usize>;
}

impl SimWord for bool {
    const LANES: usize = 1;

    #[inline]
    fn splat(bit: bool) -> bool {
        bit
    }

    #[inline]
    fn lane(self, lane: usize) -> bool {
        assert!(lane < 1, "lane {lane} out of range for a 1-lane bool");
        self
    }

    #[inline]
    fn set_lane(&mut self, lane: usize, bit: bool) {
        assert!(lane < 1, "lane {lane} out of range for a 1-lane bool");
        *self = bit;
    }

    #[inline]
    fn mask_lanes(count: usize) -> bool {
        assert!(count <= 1, "{count} lanes exceed a 1-lane bool");
        count == 1
    }

    #[inline]
    fn first_lane(self) -> Option<usize> {
        if self {
            Some(0)
        } else {
            None
        }
    }
}

impl SimWord for u64 {
    const LANES: usize = 64;

    #[inline]
    fn splat(bit: bool) -> u64 {
        if bit {
            u64::MAX
        } else {
            0
        }
    }

    #[inline]
    fn lane(self, lane: usize) -> bool {
        assert!(lane < 64, "lane {lane} out of range for a 64-lane u64");
        (self >> lane) & 1 == 1
    }

    #[inline]
    fn set_lane(&mut self, lane: usize, bit: bool) {
        assert!(lane < 64, "lane {lane} out of range for a 64-lane u64");
        let mask = 1u64 << lane;
        if bit {
            *self |= mask;
        } else {
            *self &= !mask;
        }
    }

    #[inline]
    fn lane_one(lane: usize) -> u64 {
        assert!(lane < 64, "lane {lane} out of range for a 64-lane u64");
        1u64 << lane
    }

    #[inline]
    fn mask_lanes(count: usize) -> u64 {
        assert!(count <= 64, "{count} lanes exceed a 64-lane u64");
        if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        }
    }

    #[inline]
    fn first_lane(self) -> Option<usize> {
        if self == 0 {
            None
        } else {
            Some(self.trailing_zeros() as usize)
        }
    }
}

/// A `64·N`-lane simulation word: `N` `u64` limbs combined element-wise
/// with plain safe array loops that LLVM autovectorizes (no `unsafe`,
/// no intrinsics). Lane `l` lives in bit `l % 64` of limb `l / 64`, so
/// a `Wide` word is layout-compatible with `N` consecutive `u64`
/// batches. Use the [`W256`]/[`W512`] aliases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wide<const N: usize>([u64; N]);

/// 256 simulation lanes per word (`[u64; 4]`).
pub type W256 = Wide<4>;

/// 512 simulation lanes per word (`[u64; 8]`).
pub type W512 = Wide<8>;

impl<const N: usize> Wide<N> {
    /// Builds a wide word from its `u64` limbs, limb `k` carrying lanes
    /// `64k .. 64k+64`.
    #[inline]
    pub fn from_limbs(limbs: [u64; N]) -> Self {
        Wide(limbs)
    }

    /// The `u64` limbs, limb `k` carrying lanes `64k .. 64k+64`.
    #[inline]
    pub fn limbs(self) -> [u64; N] {
        self.0
    }
}

impl<const N: usize> BitAnd for Wide<N> {
    type Output = Self;
    #[inline]
    fn bitand(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a &= *b;
        }
        self
    }
}

impl<const N: usize> BitOr for Wide<N> {
    type Output = Self;
    #[inline]
    fn bitor(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a |= *b;
        }
        self
    }
}

impl<const N: usize> BitXor for Wide<N> {
    type Output = Self;
    #[inline]
    fn bitxor(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a ^= *b;
        }
        self
    }
}

impl<const N: usize> Not for Wide<N> {
    type Output = Self;
    #[inline]
    fn not(mut self) -> Self {
        for a in self.0.iter_mut() {
            *a = !*a;
        }
        self
    }
}

impl<const N: usize> SimWord for Wide<N> {
    const LANES: usize = 64 * N;

    #[inline]
    fn splat(bit: bool) -> Self {
        Wide([u64::splat(bit); N])
    }

    #[inline]
    fn lane(self, lane: usize) -> bool {
        assert!(
            lane < Self::LANES,
            "lane {lane} out of range for a {}-lane wide word",
            Self::LANES
        );
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    #[inline]
    fn set_lane(&mut self, lane: usize, bit: bool) {
        assert!(
            lane < Self::LANES,
            "lane {lane} out of range for a {}-lane wide word",
            Self::LANES
        );
        let mask = 1u64 << (lane % 64);
        if bit {
            self.0[lane / 64] |= mask;
        } else {
            self.0[lane / 64] &= !mask;
        }
    }

    #[inline]
    fn mask_lanes(count: usize) -> Self {
        assert!(
            count <= Self::LANES,
            "{count} lanes exceed a {}-lane wide word",
            Self::LANES
        );
        let mut w = [0u64; N];
        for (k, limb) in w.iter_mut().enumerate() {
            let low = k * 64;
            *limb = u64::mask_lanes(count.saturating_sub(low).min(64));
        }
        Wide(w)
    }

    #[inline]
    fn first_lane(self) -> Option<usize> {
        for (k, &limb) in self.0.iter().enumerate() {
            if limb != 0 {
                return Some(k * 64 + limb.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Tape opcode. Only combinational gates are lowered; everything else
/// lives in the state region of the value array. The variants past
/// `Mux` only appear on fused tapes ([`SimProgram::compile_fused`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpCode {
    Not,
    And,
    Or,
    Xor,
    Mux,
    AndNot,
    OrNot,
    Nand,
    Nor,
    Xnor,
    And3,
    Or3,
}

impl OpCode {
    /// Stable lower-case name, the key used by [`TapeStats`].
    fn name(self) -> &'static str {
        match self {
            OpCode::Not => "not",
            OpCode::And => "and",
            OpCode::Or => "or",
            OpCode::Xor => "xor",
            OpCode::Mux => "mux",
            OpCode::AndNot => "andnot",
            OpCode::OrNot => "ornot",
            OpCode::Nand => "nand",
            OpCode::Nor => "nor",
            OpCode::Xnor => "xnor",
            OpCode::And3 => "and3",
            OpCode::Or3 => "or3",
        }
    }

    /// Every opcode, in the stable order [`TapeStats::op_counts`] uses.
    const ALL: [OpCode; 12] = [
        OpCode::Not,
        OpCode::And,
        OpCode::Or,
        OpCode::Xor,
        OpCode::Mux,
        OpCode::AndNot,
        OpCode::OrNot,
        OpCode::Nand,
        OpCode::Nor,
        OpCode::Xnor,
        OpCode::And3,
        OpCode::Or3,
    ];
}

/// One tape op decoded for external analyzers (the CNF encoder in
/// `hwperm-sat`, fault-site enumeration, …). All operands are
/// value-array slots, already resolved — an analyzer walking
/// [`SimProgram::op`] in tape order sees exactly the data flow
/// [`SimProgram::exec`] executes, with op `j` defining slot
/// `comb_base() + j`. The variants past `Mux` are fused opcodes and
/// only appear on tapes from [`SimProgram::compile_fused`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeOp {
    /// `out = !a`.
    Not {
        /// Operand slot.
        a: u32,
    },
    /// `out = a & b`.
    And {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = a | b`.
    Or {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = a ^ b`.
    Xor {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = sel ? b : a`.
    Mux {
        /// Select slot.
        sel: u32,
        /// Slot taken when `sel` is 0.
        a: u32,
        /// Slot taken when `sel` is 1.
        b: u32,
    },
    /// `out = a & !b` (fused negated-input AND).
    AndNot {
        /// Positive operand slot.
        a: u32,
        /// Negated operand slot.
        b: u32,
    },
    /// `out = a | !b` (fused negated-input OR).
    OrNot {
        /// Positive operand slot.
        a: u32,
        /// Negated operand slot.
        b: u32,
    },
    /// `out = !(a & b)` (fused complemented AND).
    Nand {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = !(a | b)` (fused complemented OR).
    Nor {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = !(a ^ b)` (fused complemented XOR).
    Xnor {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = a & b & c` (fused AND chain).
    And3 {
        /// First operand slot.
        a: u32,
        /// Second operand slot.
        b: u32,
        /// Third operand slot.
        c: u32,
    },
    /// `out = a | b | c` (fused OR chain).
    Or3 {
        /// First operand slot.
        a: u32,
        /// Second operand slot.
        b: u32,
        /// Third operand slot.
        c: u32,
    },
}

/// One D flip-flop's slot pair, as exposed to external analyzers: the
/// state slot `q`, the slot `d` its next value settles into, and the
/// reset value. See [`SimProgram::dff_slot_pairs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DffSlotPair {
    /// The register's state slot (read by the combinational wave).
    pub q: u32,
    /// The slot holding the settled next-state value.
    pub d: u32,
    /// Reset/initial value.
    pub init: bool,
}

/// Aggregate tape statistics — op counts by kind, level/block shape,
/// and what opcode fusion saved. Produced by [`SimProgram::stats`];
/// `hwperm lint --json` reports it per circuit family so fusion wins
/// are observable without recompiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeStats {
    /// Tape ops after any fusion (= [`SimProgram::op_count`]).
    pub ops: usize,
    /// Logic levels in the tape.
    pub levels: usize,
    /// Level blocks [`SimProgram::exec`] walks.
    pub blocks: usize,
    /// Combinational gate count of the source netlist — the op count
    /// an unfused compile of the same netlist produces.
    pub unfused_ops: usize,
    /// `(opcode name, count)` for every opcode, in a stable order,
    /// including zero counts (a stable schema for JSON reporting).
    pub op_counts: Vec<(&'static str, usize)>,
}

impl TapeStats {
    /// Ops eliminated by fusion (`0` for a canonical compile).
    pub fn fused_away(&self) -> usize {
        self.unfused_ops - self.ops
    }
}

/// A named port resolved to flat value-array slots (LSB first).
#[derive(Debug, Clone)]
struct SlotPort {
    name: String,
    slots: Vec<u32>,
}

/// One D flip-flop as a slot pair: `q` (its state slot) and `d` (the
/// slot its data input settles into).
#[derive(Debug, Clone, Copy)]
struct DffSlots {
    q: u32,
    d: u32,
    init: bool,
}

/// Sentinel slot for a net elided by opcode fusion.
const ELIDED: u32 = u32::MAX;

/// Per-op working form of the fusion rewriter: the original opcode
/// plus polarity flags on the two data operands (`na`/`nb` mean "read
/// complemented") and an optional third operand for collapsed chains.
/// Operand fields hold *net* indices until final lowering.
#[derive(Debug, Clone, Copy)]
struct Pending {
    code: OpCode,
    a: u32,
    na: bool,
    b: u32,
    nb: bool,
    sel: u32,
    c: u32,
    has_c: bool,
}

/// Level-block op budget: ops per block sized so a block's SoA
/// metadata (13 B/op) plus four touched [`W512`] operands per op
/// (4 × 64 B) stay within a conservative 32 KiB L1 working set:
/// `128 × (13 + 256) ≈ 34 KiB`. Narrower words under-fill the budget,
/// which only means more (still correct) block boundaries.
const BLOCK_OPS: u32 = 128;

/// A [`Netlist`] compiled to the flat simulation tape. See the module
/// docs for the layout; construct with [`SimProgram::compile`] (or
/// [`SimProgram::compile_fused`] for the opcode-fused variant) and
/// share across simulator instances (and threads) via
/// [`SimProgram::compile_shared`].
#[derive(Debug)]
pub struct SimProgram {
    /// The source netlist, retained for port metadata, diagnostics and
    /// structural probing ([`SimProgram::netlist`]).
    netlist: Netlist,
    /// Net index → value-array slot ([`ELIDED`] for fused-away nets).
    slot_of: Vec<u32>,
    /// First combinational slot; tape op `j` writes `comb_base + j`.
    comb_base: u32,
    /// Structure-of-arrays op stream, levelized (level, then creation
    /// order). `args_a[j]`/`args_b[j]` are operand slots (`b == a` for
    /// `Not`); `args_sel[j]` is the select slot (read for `Mux`) or the
    /// third operand (read for `And3`/`Or3`).
    opcodes: Vec<OpCode>,
    args_a: Vec<u32>,
    args_b: Vec<u32>,
    args_sel: Vec<u32>,
    /// Tape offset where each level starts; `level_starts.last()` is
    /// the op count. Level `k` (1-based) occupies
    /// `level_starts[k-1]..level_starts[k]`.
    level_starts: Vec<u32>,
    /// Tape offset where each execution block starts (see module docs
    /// on level-blocked execution); `block_starts.last()` is the op
    /// count.
    block_starts: Vec<u32>,
    /// Whether the fusion rewriter ran ([`SimProgram::compile_fused`]).
    fused: bool,
    /// Combinational gate count of the source netlist (= op count of
    /// an unfused compile).
    unfused_ops: u32,
    /// Constant slots and their baked values.
    consts: Vec<(u32, bool)>,
    /// DFF slot pairs, in creation order.
    dffs: Vec<DffSlots>,
    /// Input/output ports resolved to slots, in declaration order.
    inputs: Vec<SlotPort>,
    outputs: Vec<SlotPort>,
}

impl SimProgram {
    /// Lowers a validated netlist into the tape. `O(gates)` one-time
    /// cost; the result is immutable. Every net keeps a value slot —
    /// no fusion — so external analyzers can map nets to ops
    /// one-for-one; see [`SimProgram::compile_fused`] for the
    /// throughput-oriented variant.
    ///
    /// # Panics
    /// Panics if any gate or port references an out-of-range net.
    /// Combinational forward references (structurally invalid netlists)
    /// compile but execute in an unspecified order — run
    /// [`Netlist::validate`] first if provenance is in doubt.
    pub fn compile(netlist: Netlist) -> SimProgram {
        Self::compile_inner(netlist, false)
    }

    /// [`SimProgram::compile`] plus the opcode-fusion rewrite: `Not`
    /// gates are folded into consumers as negated-input opcodes
    /// (`AndNot`/`OrNot`/`Nand`/`Nor`/`Xnor`, `Mux` select inversion)
    /// and one level of pure `And`/`Or` chains collapses into
    /// `And3`/`Or3`. The fused tape computes bit-identical port values
    /// and DFF behaviour with fewer ops and fewer live slots.
    ///
    /// Nets elided by fusion no longer have a value slot:
    /// [`SimProgram::slot`] (and therefore simulator `probe`) panics
    /// for them. Use the canonical [`SimProgram::compile`] when
    /// arbitrary internal nets must stay observable (VCD tracing,
    /// fault injection, one-hot bank scans).
    ///
    /// # Panics
    /// As [`SimProgram::compile`].
    pub fn compile_fused(netlist: Netlist) -> SimProgram {
        Self::compile_inner(netlist, true)
    }

    /// [`SimProgram::compile`], wrapped for cross-thread sharing: every
    /// simulator built from the same `Arc` shares one tape.
    pub fn compile_shared(netlist: Netlist) -> Arc<SimProgram> {
        Arc::new(Self::compile(netlist))
    }

    /// [`SimProgram::compile_fused`], wrapped for cross-thread sharing.
    pub fn compile_fused_shared(netlist: Netlist) -> Arc<SimProgram> {
        Arc::new(Self::compile_fused(netlist))
    }

    fn compile_inner(netlist: Netlist, fuse: bool) -> SimProgram {
        let n = netlist.len();
        let in_range = |net: NetId, what: &str| {
            assert!(
                net.index() < n,
                "cannot compile: {what} references out-of-range net {}",
                net.index()
            );
            net
        };
        // Fanin validation, exactly as the pre-fusion compiler did it
        // while computing levels.
        for g in netlist.gates() {
            if g.is_combinational() {
                for f in g.fanin() {
                    in_range(f, "gate");
                }
            }
        }
        // Working form: one `Pending` per net (state nets hold a dummy
        // entry that is never read).
        let dummy = Pending {
            code: OpCode::Not,
            a: 0,
            na: false,
            b: 0,
            nb: false,
            sel: 0,
            c: 0,
            has_c: false,
        };
        let mut pending = vec![dummy; n];
        let mut unfused_ops = 0u32;
        for (i, g) in netlist.gates().iter().enumerate() {
            if !g.is_combinational() {
                continue;
            }
            unfused_ops += 1;
            let (code, a, b, sel) = match *g {
                Gate::Not(x) => (OpCode::Not, x, x, x),
                Gate::And(x, y) => (OpCode::And, x, y, x),
                Gate::Or(x, y) => (OpCode::Or, x, y, x),
                Gate::Xor(x, y) => (OpCode::Xor, x, y, x),
                Gate::Mux { sel, a, b } => (OpCode::Mux, a, b, sel),
                Gate::Const(_) | Gate::Input | Gate::Dff { .. } => {
                    unreachable!("state gates are never lowered to ops")
                }
            };
            pending[i] = Pending {
                code,
                a: a.index() as u32,
                na: false,
                b: b.index() as u32,
                nb: false,
                sel: sel.index() as u32,
                c: 0,
                has_c: false,
            };
        }
        let mut elided = vec![false; n];
        if fuse {
            Self::fuse(&netlist, &mut pending, &mut elided);
        }
        // Slot assignment: state region first (creation order), then
        // one slot per surviving op in (post-fusion) tape order.
        let mut slot_of = vec![ELIDED; n];
        let mut next_state = 0u32;
        for (i, g) in netlist.gates().iter().enumerate() {
            if !g.is_combinational() {
                slot_of[i] = next_state;
                next_state += 1;
            }
        }
        let comb_base = next_state;
        // Logic levels over the *surviving* ops: state nets are level
        // 0, each op one past its deepest read operand. Operand nets
        // always survive (fusion substitutes elided nets away), and
        // construction order is topological, so one ascending pass
        // settles every level.
        let mut level = vec![0u32; n];
        let mut max_level = 0u32;
        for i in 0..n {
            if !netlist.gates()[i].is_combinational() || elided[i] {
                continue;
            }
            let p = &pending[i];
            let mut deepest = level[p.a as usize];
            match p.code {
                OpCode::Not => {}
                OpCode::Mux => {
                    deepest = deepest.max(level[p.b as usize]).max(level[p.sel as usize]);
                }
                _ => {
                    deepest = deepest.max(level[p.b as usize]);
                    if p.has_c {
                        deepest = deepest.max(level[p.c as usize]);
                    }
                }
            }
            level[i] = deepest + 1;
            max_level = max_level.max(level[i]);
        }
        // Stable level-major order: bucket surviving ops by level,
        // creation order within a level.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize];
        for i in 0..n {
            if netlist.gates()[i].is_combinational() && !elided[i] {
                buckets[level[i] as usize - 1].push(i as u32);
            }
        }
        let mut level_starts = Vec::with_capacity(max_level as usize + 1);
        level_starts.push(0u32);
        let mut tape_order = Vec::new();
        for bucket in &buckets {
            for &i in bucket {
                slot_of[i as usize] = comb_base + tape_order.len() as u32;
                tape_order.push(i);
            }
            level_starts.push(tape_order.len() as u32);
        }
        // Lower the surviving ops now that every live net has a slot.
        let mut opcodes = Vec::with_capacity(tape_order.len());
        let mut args_a = Vec::with_capacity(tape_order.len());
        let mut args_b = Vec::with_capacity(tape_order.len());
        let mut args_sel = Vec::with_capacity(tape_order.len());
        for &i in &tape_order {
            let p = pending[i as usize];
            // Resolve polarity flags and chain operands to final
            // opcodes; operand columns switch from nets to slots here.
            let (code, a, b, sel) = match p.code {
                OpCode::Not => (OpCode::Not, p.a, p.a, p.a),
                OpCode::And if p.has_c => (OpCode::And3, p.a, p.b, p.c),
                OpCode::Or if p.has_c => (OpCode::Or3, p.a, p.b, p.c),
                OpCode::And => match (p.na, p.nb) {
                    (false, false) => (OpCode::And, p.a, p.b, p.a),
                    (false, true) => (OpCode::AndNot, p.a, p.b, p.a),
                    (true, false) => (OpCode::AndNot, p.b, p.a, p.b),
                    (true, true) => (OpCode::Nor, p.a, p.b, p.a),
                },
                OpCode::Or => match (p.na, p.nb) {
                    (false, false) => (OpCode::Or, p.a, p.b, p.a),
                    (false, true) => (OpCode::OrNot, p.a, p.b, p.a),
                    (true, false) => (OpCode::OrNot, p.b, p.a, p.b),
                    (true, true) => (OpCode::Nand, p.a, p.b, p.a),
                },
                OpCode::Xor => {
                    if p.na ^ p.nb {
                        (OpCode::Xnor, p.a, p.b, p.a)
                    } else {
                        (OpCode::Xor, p.a, p.b, p.a)
                    }
                }
                OpCode::Mux => (OpCode::Mux, p.a, p.b, p.sel),
                fused => unreachable!("{fused:?} cannot appear before lowering"),
            };
            opcodes.push(code);
            args_a.push(slot_of[a as usize]);
            args_b.push(slot_of[b as usize]);
            args_sel.push(slot_of[sel as usize]);
        }
        let block_starts = Self::compute_blocks(&level_starts);
        // State metadata: baked constants and DFF slot pairs.
        let mut consts = Vec::new();
        let mut dffs = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            match *g {
                Gate::Const(c) => consts.push((slot_of[i], c)),
                Gate::Dff { d, init } => dffs.push(DffSlots {
                    q: slot_of[i],
                    d: slot_of[in_range(d, "DFF").index()],
                    init,
                }),
                _ => {}
            }
        }
        let resolve = |ports: &[Port], dir: &str| -> Vec<SlotPort> {
            ports
                .iter()
                .map(|p| SlotPort {
                    name: p.name.clone(),
                    slots: p
                        .nets
                        .iter()
                        .map(|&net| slot_of[in_range(net, dir).index()])
                        .collect(),
                })
                .collect()
        };
        let inputs = resolve(netlist.input_ports(), "input port");
        let outputs = resolve(netlist.output_ports(), "output port");
        SimProgram {
            netlist,
            slot_of,
            comb_base,
            opcodes,
            args_a,
            args_b,
            args_sel,
            level_starts,
            block_starts,
            fused: fuse,
            unfused_ops,
            consts,
            dffs,
            inputs,
            outputs,
        }
    }

    /// The fusion rewrite over the `Pending` working form. Three
    /// passes, each of which only elides a net that is unobservable
    /// (not an output-port bit, not a DFF data input) and fully
    /// absorbed by its consumers:
    ///
    /// 1. **NOT folding** — a `Not` whose every consumer is an
    ///    `And`/`Or`/`Xor` data operand or a `Mux` select is elided;
    ///    consumers flip the operand's polarity flag (`Mux` swaps its
    ///    data arms instead).
    /// 2. **Complement fusion** — `Not(g)` where `g` is a single-use
    ///    `And`/`Or`/`Xor` elides `g`: the `Not` becomes the De-Morgan
    ///    complement (`And ↔ Or` with flipped flags, `Xor` with one
    ///    flag flipped), lowering to `Nand`/`Nor`/`Xnor`.
    /// 3. **Chain collapse** — `And(And(a, b), c)` with a single-use,
    ///    flag-free inner gate becomes `And3(a, b, c)` (same for
    ///    `Or`); one level only, so the tape stays shallow-operand.
    fn fuse(netlist: &Netlist, pending: &mut [Pending], elided: &mut [bool]) {
        let n = netlist.len();
        let gates = netlist.gates();
        let is_comb = |i: usize| gates[i].is_combinational();
        // Observable nets must keep their value slots: output-port
        // bits are read by testbenches, DFF data inputs by `latch`.
        let mut observable = vec![false; n];
        for p in netlist.output_ports() {
            for &net in &p.nets {
                observable[net.index()] = true;
            }
        }
        for g in gates {
            if let Gate::Dff { d, .. } = *g {
                observable[d.index()] = true;
            }
        }
        // Combinational consumer gates per net (deduped; construction
        // order pushes a gate's operands consecutively).
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in gates.iter().enumerate() {
            if !g.is_combinational() {
                continue;
            }
            for f in g.fanin() {
                let v = &mut consumers[f.index()];
                if v.last() != Some(&(i as u32)) {
                    v.push(i as u32);
                }
            }
        }
        // Current read counts (combinational operands + DFF data
        // inputs + output-port bits) over the live pending ops.
        let recount = |pending: &[Pending], elided: &[bool]| -> Vec<u32> {
            let mut uses = vec![0u32; n];
            for i in 0..n {
                if !is_comb(i) || elided[i] {
                    continue;
                }
                let p = &pending[i];
                uses[p.a as usize] += 1;
                match p.code {
                    OpCode::Not => {}
                    OpCode::Mux => {
                        uses[p.b as usize] += 1;
                        uses[p.sel as usize] += 1;
                    }
                    _ => {
                        uses[p.b as usize] += 1;
                        if p.has_c {
                            uses[p.c as usize] += 1;
                        }
                    }
                }
            }
            for g in gates {
                if let Gate::Dff { d, .. } = *g {
                    uses[d.index()] += 1;
                }
            }
            for p in netlist.output_ports() {
                for &net in &p.nets {
                    uses[net.index()] += 1;
                }
            }
            uses
        };
        // Pass 1: fold NOT gates into absorbing consumers. Ascending
        // net order means a Not's source was already processed, so
        // substituted operands never point at an elided net.
        for t in 0..n {
            if !is_comb(t) || observable[t] || pending[t].code != OpCode::Not {
                continue;
            }
            let cons = &consumers[t];
            if cons.is_empty() {
                continue;
            }
            let t32 = t as u32;
            let absorbable = cons.iter().all(|&g| {
                let p = &pending[g as usize];
                match p.code {
                    OpCode::And | OpCode::Or | OpCode::Xor => true,
                    // A Mux absorbs a negated *select* (by swapping its
                    // data arms) but not a negated data operand.
                    OpCode::Mux => p.a != t32 && p.b != t32,
                    _ => false,
                }
            });
            if !absorbable {
                continue;
            }
            let src = pending[t].a;
            for &g in cons {
                let p = &mut pending[g as usize];
                if p.code == OpCode::Mux && p.sel == t32 {
                    std::mem::swap(&mut p.a, &mut p.b);
                    std::mem::swap(&mut p.na, &mut p.nb);
                    p.sel = src;
                }
                if p.a == t32 {
                    p.a = src;
                    p.na = !p.na;
                }
                if p.b == t32 {
                    p.b = src;
                    p.nb = !p.nb;
                }
            }
            elided[t] = true;
        }
        // Pass 2: complement fusion — the surviving Not over a
        // single-use And/Or/Xor takes over the gate as its De Morgan
        // complement.
        let uses = recount(pending, elided);
        for t in 0..n {
            if !is_comb(t) || elided[t] || pending[t].code != OpCode::Not {
                continue;
            }
            let src = pending[t].a as usize;
            if !is_comb(src) || elided[src] || observable[src] || uses[src] != 1 {
                continue;
            }
            let q = pending[src];
            pending[t] = match q.code {
                OpCode::And => Pending {
                    code: OpCode::Or,
                    na: !q.na,
                    nb: !q.nb,
                    ..q
                },
                OpCode::Or => Pending {
                    code: OpCode::And,
                    na: !q.na,
                    nb: !q.nb,
                    ..q
                },
                OpCode::Xor => Pending { na: !q.na, ..q },
                _ => continue,
            };
            elided[src] = true;
        }
        // Pass 3: collapse one level of pure (flag-free) And/Or chains
        // into three-input ops.
        let uses = recount(pending, elided);
        for t in 0..n {
            if !is_comb(t) || elided[t] {
                continue;
            }
            let p = pending[t];
            if !matches!(p.code, OpCode::And | OpCode::Or) || p.na || p.nb || p.has_c {
                continue;
            }
            if p.a == p.b {
                continue;
            }
            let collapsible = |inner: u32| -> bool {
                let i = inner as usize;
                is_comb(i) && !elided[i] && !observable[i] && uses[i] == 1 && {
                    let q = &pending[i];
                    q.code == p.code && !q.na && !q.nb && !q.has_c
                }
            };
            let (via_a, via_b) = (collapsible(p.a), collapsible(p.b));
            if via_a {
                let q = pending[p.a as usize];
                elided[p.a as usize] = true;
                pending[t] = Pending {
                    a: q.a,
                    na: false,
                    b: q.b,
                    nb: false,
                    c: p.b,
                    has_c: true,
                    ..p
                };
            } else if via_b {
                let q = pending[p.b as usize];
                elided[p.b as usize] = true;
                pending[t] = Pending {
                    a: p.a,
                    na: false,
                    b: q.a,
                    nb: false,
                    c: q.b,
                    has_c: true,
                    ..p
                };
            }
        }
    }

    /// Greedy level-block boundaries: consecutive levels accumulate
    /// into a block until it reaches [`BLOCK_OPS`]; a level larger than
    /// the whole budget is split at the budget boundary (any ascending
    /// contiguous segmentation is valid — see
    /// [`SimProgram::exec_range`]).
    fn compute_blocks(level_starts: &[u32]) -> Vec<u32> {
        let total = *level_starts.last().expect("level_starts is never empty");
        let mut blocks = vec![0u32];
        let mut start = 0u32;
        for &end in &level_starts[1..] {
            while end - start >= BLOCK_OPS {
                start = (start + BLOCK_OPS).min(end);
                blocks.push(start);
            }
        }
        if *blocks.last().expect("seeded with 0") != total {
            blocks.push(total);
        }
        blocks
    }

    /// The source netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of value-array slots: state slots plus one per tape op.
    /// Equal to the net count for a canonical compile; a fused tape
    /// has fewer (elided nets carry no slot).
    pub fn slot_count(&self) -> usize {
        self.comb_base as usize + self.opcodes.len()
    }

    /// Number of tape ops (= combinational gates, minus fusion).
    pub fn op_count(&self) -> usize {
        self.opcodes.len()
    }

    /// Number of logic levels in the tape (0 for a state-only netlist).
    pub fn level_count(&self) -> usize {
        self.level_starts.len() - 1
    }

    /// Number of level blocks [`SimProgram::exec`] walks.
    pub fn block_count(&self) -> usize {
        self.block_starts.len() - 1
    }

    /// Number of D flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// `true` if this tape came from [`SimProgram::compile_fused`].
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Aggregate tape statistics: op counts by kind, level/block
    /// shape, and fusion savings versus the canonical compile.
    pub fn stats(&self) -> TapeStats {
        let mut counts = [0usize; OpCode::ALL.len()];
        for &code in &self.opcodes {
            counts[code as usize] += 1;
        }
        TapeStats {
            ops: self.op_count(),
            levels: self.level_count(),
            blocks: self.block_count(),
            unfused_ops: self.unfused_ops as usize,
            op_counts: OpCode::ALL
                .iter()
                .map(|&c| (c.name(), counts[c as usize]))
                .collect(),
        }
    }

    /// The value-array slot a net settles into.
    ///
    /// # Panics
    /// Panics if the net is out of range for the source netlist, or if
    /// opcode fusion elided it (fused tapes only keep slots for
    /// observable and unabsorbed nets — compile without fusion to
    /// probe arbitrary internal nets).
    #[inline]
    pub fn slot(&self, net: NetId) -> usize {
        let slot = self.slot_of[net.index()];
        assert!(
            slot != ELIDED,
            "net {} was elided by opcode fusion; compile without fusion to probe it",
            net.index()
        );
        slot as usize
    }

    /// First combinational slot: slots `0..comb_base()` hold state
    /// (inputs, constants, DFF outputs, in creation order), and tape op
    /// `j` writes slot `comb_base() + j`. External tape drivers (the
    /// fault-overlay executors in `hwperm-faults`) use this to translate
    /// a combinational net's slot into its tape-op position.
    #[inline]
    pub fn comb_base(&self) -> usize {
        self.comb_base as usize
    }

    /// `true` iff the net is a DFF output (its slot is a register state
    /// slot that [`SimProgram::latch`] overwrites on every clock edge).
    ///
    /// # Panics
    /// Panics if the net is out of range for the source netlist.
    pub fn is_dff_net(&self, net: NetId) -> bool {
        matches!(self.netlist.gates()[net.index()], Gate::Dff { .. })
    }

    /// A fresh per-instance value array: all-zero except baked
    /// constants and DFF reset values.
    pub fn initial_values<W: SimWord>(&self) -> Vec<W> {
        let mut values = vec![W::splat(false); self.slot_count()];
        for &(slot, c) in &self.consts {
            values[slot as usize] = W::splat(c);
        }
        for d in &self.dffs {
            values[d.q as usize] = W::splat(d.init);
        }
        values
    }

    /// Combinational settle: executes the tape once over `values`,
    /// walking the precomputed level blocks so each segment's op
    /// metadata and operand words stay cache-resident. Input and DFF
    /// slots are read, never written; constant slots were baked at
    /// construction.
    #[inline]
    pub fn exec<W: SimWord>(&self, values: &mut [W]) {
        for w in self.block_starts.windows(2) {
            self.exec_range(values, w[0] as usize..w[1] as usize);
        }
    }

    /// Executes tape ops `range` (op `j` writes slot
    /// `comb_base() + j`). Segmented execution is what lets an external
    /// driver interpose on the wave mid-tape: run `0..j+1`, overwrite op
    /// `j`'s output slot, then run `j+1..op_count()` — the mechanism
    /// behind `hwperm-faults`' non-destructive stuck-at overlays. The
    /// full-tape [`SimProgram::exec`] is this over the level blocks.
    ///
    /// Correctness requires segments be executed in ascending,
    /// contiguous order starting at 0 (the tape is levelized, so op `j`
    /// only reads slots below `comb_base() + j`).
    ///
    /// # Panics
    /// Panics if `range` exceeds `0..op_count()`.
    #[inline]
    pub fn exec_range<W: SimWord>(&self, values: &mut [W], range: std::ops::Range<usize>) {
        assert!(
            range.end <= self.opcodes.len(),
            "tape range {range:?} exceeds the {}-op tape",
            self.opcodes.len()
        );
        let base = self.comb_base as usize;
        for j in range {
            let a = values[self.args_a[j] as usize];
            let v = match self.opcodes[j] {
                OpCode::Not => !a,
                OpCode::And => a & values[self.args_b[j] as usize],
                OpCode::Or => a | values[self.args_b[j] as usize],
                OpCode::Xor => a ^ values[self.args_b[j] as usize],
                OpCode::Mux => {
                    let s = values[self.args_sel[j] as usize];
                    (s & values[self.args_b[j] as usize]) | (!s & a)
                }
                OpCode::AndNot => a & !values[self.args_b[j] as usize],
                OpCode::OrNot => a | !values[self.args_b[j] as usize],
                OpCode::Nand => !(a & values[self.args_b[j] as usize]),
                OpCode::Nor => !(a | values[self.args_b[j] as usize]),
                OpCode::Xnor => !(a ^ values[self.args_b[j] as usize]),
                OpCode::And3 => {
                    a & values[self.args_b[j] as usize] & values[self.args_sel[j] as usize]
                }
                OpCode::Or3 => {
                    a | values[self.args_b[j] as usize] | values[self.args_sel[j] as usize]
                }
            };
            values[base + j] = v;
        }
    }

    /// Clock edge: every DFF latches its settled `d` slot into its `q`
    /// slot. Two-phase through `scratch` so flop-to-flop chains all
    /// sample the pre-edge wave, exactly like the gate-walking
    /// simulators did with their separate state array.
    pub fn latch<W: SimWord>(&self, values: &mut [W], scratch: &mut Vec<W>) {
        scratch.clear();
        scratch.extend(self.dffs.iter().map(|d| values[d.d as usize]));
        for (d, &v) in self.dffs.iter().zip(scratch.iter()) {
            values[d.q as usize] = v;
        }
    }

    /// Resets every DFF slot to its `init` value (other slots are left
    /// as they are, like the pre-tape simulators).
    pub fn reset<W: SimWord>(&self, values: &mut [W]) {
        for d in &self.dffs {
            values[d.q as usize] = W::splat(d.init);
        }
    }

    /// Decodes tape op `j` for external analyzers. The op defines slot
    /// `comb_base() + j`; operands are value-array slots strictly below
    /// that (the tape is levelized). Fused tapes decode to the fused
    /// [`TapeOp`] variants.
    ///
    /// # Panics
    /// Panics if `j >= op_count()`.
    #[inline]
    pub fn op(&self, j: usize) -> TapeOp {
        let (a, b, sel) = (self.args_a[j], self.args_b[j], self.args_sel[j]);
        match self.opcodes[j] {
            OpCode::Not => TapeOp::Not { a },
            OpCode::And => TapeOp::And { a, b },
            OpCode::Or => TapeOp::Or { a, b },
            OpCode::Xor => TapeOp::Xor { a, b },
            OpCode::Mux => TapeOp::Mux { sel, a, b },
            OpCode::AndNot => TapeOp::AndNot { a, b },
            OpCode::OrNot => TapeOp::OrNot { a, b },
            OpCode::Nand => TapeOp::Nand { a, b },
            OpCode::Nor => TapeOp::Nor { a, b },
            OpCode::Xnor => TapeOp::Xnor { a, b },
            OpCode::And3 => TapeOp::And3 { a, b, c: sel },
            OpCode::Or3 => TapeOp::Or3 { a, b, c: sel },
        }
    }

    /// Iterates the constant slots and their baked values, in creation
    /// order.
    pub fn const_slots(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.consts.iter().copied()
    }

    /// Iterates the DFF slot pairs, in creation order — the same order
    /// [`SimProgram::latch`] processes them.
    pub fn dff_slot_pairs(&self) -> impl Iterator<Item = DffSlotPair> + '_ {
        self.dffs.iter().map(|d| DffSlotPair {
            q: d.q,
            d: d.d,
            init: d.init,
        })
    }

    /// Slots of the named input port, with the same panic diagnostics
    /// as the simulators' `set_input` (port name plus every known input
    /// and its width).
    ///
    /// # Panics
    /// Panics if the port does not exist.
    #[inline]
    pub fn input_slots(&self, name: &str) -> &[u32] {
        match self.inputs.iter().find(|p| p.name == name) {
            Some(p) => &p.slots,
            None => {
                // Delegate to the shared lookup for the exact message.
                crate::sim::lookup_input_port(&self.netlist, name);
                unreachable!("lookup panics when the slot map has no entry")
            }
        }
    }

    /// Slots of the named output port.
    ///
    /// # Panics
    /// Panics if the port does not exist.
    #[inline]
    pub fn output_slots(&self, name: &str) -> &[u32] {
        self.outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.slots[..])
            .unwrap_or_else(|| panic!("no output port named {name:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn adder() -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        b.finish()
    }

    #[test]
    fn tape_shape_matches_netlist() {
        let nl = adder();
        let comb = nl.combinational_count();
        let p = SimProgram::compile(nl.clone());
        assert_eq!(p.slot_count(), nl.len());
        assert_eq!(p.op_count(), comb);
        assert_eq!(p.dff_count(), 0);
        assert!(p.level_count() >= 1);
        assert_eq!(
            p.level_count(),
            nl.gate_depth(),
            "tape levels = combinational gate depth"
        );
        assert!(!p.is_fused());
    }

    #[test]
    fn slots_are_a_permutation_of_nets() {
        let p = SimProgram::compile(adder());
        let mut seen = vec![false; p.slot_count()];
        for i in 0..p.slot_count() {
            let s = p.slot(NetId::forged(i as u32));
            assert!(!std::mem::replace(&mut seen[s], true), "slot {s} reused");
        }
        assert!(seen.iter().all(|&v| v), "every slot assigned exactly once");
    }

    #[test]
    fn tape_is_levelized() {
        // Every op's operands live strictly below the op's own slot, so
        // the sequential exec order is a valid topological schedule.
        let p = SimProgram::compile(adder());
        let base = p.comb_base as usize;
        for j in 0..p.op_count() {
            let out = base + j;
            for arg in [p.args_a[j], p.args_b[j], p.args_sel[j]] {
                assert!(
                    (arg as usize) < out,
                    "op {j} reads slot {arg} at or above its own slot {out}"
                );
            }
        }
        // And level starts are monotonically non-decreasing.
        assert!(p.level_starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn constants_are_baked_into_initial_values() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let t = b.constant(true);
        let f = b.constant(false);
        let and = b.and(x[0], t);
        b.output_bus("y", &[and, f]);
        let p = SimProgram::compile(b.finish());
        let values: Vec<bool> = p.initial_values();
        for &(slot, c) in &p.consts {
            assert_eq!(values[slot as usize], c);
        }
    }

    #[test]
    fn dff_pairs_latch_two_phase() {
        // q1 -> q2 flop chain: one latch moves q1's value into q2 while
        // q1 simultaneously takes the input — no shoot-through.
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let q1 = b.dff(x[0], false);
        let q2 = b.dff(q1, true);
        b.output_bus("y", &[q2]);
        let p = SimProgram::compile(b.finish());
        assert_eq!(p.dff_count(), 2);
        let mut values: Vec<bool> = p.initial_values();
        let x_slot = p.input_slots("x")[0] as usize;
        let y_slot = p.output_slots("y")[0] as usize;
        assert!(values[y_slot], "q2 resets to 1");
        values[x_slot] = true;
        let mut scratch = Vec::new();
        p.exec(&mut values);
        p.latch(&mut values, &mut scratch); // q1 <- 1, q2 <- old q1 (0)
        assert!(!values[y_slot]);
        p.exec(&mut values);
        p.latch(&mut values, &mut scratch); // q2 <- 1
        assert!(values[y_slot]);
        p.reset(&mut values);
        assert!(values[y_slot], "reset restores init");
    }

    #[test]
    fn segmented_exec_matches_full_exec() {
        // Splitting the tape at every position and overwriting nothing
        // must reproduce the one-shot wave exactly — the contract the
        // fault-overlay executors rely on.
        let p = SimProgram::compile(adder());
        let mut reference: Vec<bool> = p.initial_values();
        let x = p.input_slots("x").to_vec();
        for (bit, &slot) in x.iter().enumerate() {
            reference[slot as usize] = (0b1011 >> bit) & 1 == 1;
        }
        let seeded = reference.clone();
        p.exec(&mut reference);
        for split in 0..=p.op_count() {
            let mut values = seeded.clone();
            p.exec_range(&mut values, 0..split);
            p.exec_range(&mut values, split..p.op_count());
            assert_eq!(values, reference, "split at op {split}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the 17-op tape")]
    fn exec_range_rejects_out_of_range_ops() {
        let p = SimProgram::compile(adder());
        assert_eq!(p.op_count(), 17, "adder tape size drifted; fix the test");
        let mut values: Vec<bool> = p.initial_values();
        p.exec_range(&mut values, 0..p.op_count() + 1);
    }

    #[test]
    fn comb_base_separates_state_from_tape_slots() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let q = b.dff(x[0], false);
        let g = b.and(x[1], q);
        b.output_bus("y", &[g]);
        let nl = b.finish();
        let p = SimProgram::compile(nl.clone());
        for (i, gate) in nl.gates().iter().enumerate() {
            let net = NetId::forged(i as u32);
            assert_eq!(
                p.slot(net) >= p.comb_base(),
                gate.is_combinational(),
                "net {i}"
            );
            assert_eq!(
                p.is_dff_net(net),
                matches!(gate, Gate::Dff { .. }),
                "net {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out-of-range net")]
    fn out_of_range_fanin_rejected_at_compile_time() {
        let nl = Netlist {
            gates: vec![Gate::Input, Gate::Not(NetId::forged(7))],
            ..Netlist::default()
        };
        let _ = SimProgram::compile(nl);
    }

    #[test]
    fn port_slot_maps_resolve_by_name() {
        let p = SimProgram::compile(adder());
        assert_eq!(p.input_slots("x").len(), 4);
        assert_eq!(p.input_slots("y").len(), 4);
        assert_eq!(p.output_slots("s").len(), 4);
        assert_eq!(p.output_slots("c").len(), 1);
    }

    // ---- wide words --------------------------------------------------

    #[test]
    fn wide_words_match_u64_limbwise() {
        // Element-wise ops on Wide must equal per-limb u64 ops.
        let a = W256::from_limbs([0xDEAD_BEEF, 0x0123_4567_89AB_CDEF, u64::MAX, 0]);
        let b = W256::from_limbs([0xF0F0_F0F0, u64::MAX, 0x5555_5555_5555_5555, 7]);
        for (i, (&x, &y)) in a.limbs().iter().zip(b.limbs().iter()).enumerate() {
            assert_eq!((a & b).limbs()[i], x & y);
            assert_eq!((a | b).limbs()[i], x | y);
            assert_eq!((a ^ b).limbs()[i], x ^ y);
            assert_eq!((!a).limbs()[i], !x);
        }
    }

    #[test]
    fn lane_accessors_roundtrip_across_widths() {
        fn probe_width<W: SimWord + std::fmt::Debug>() {
            assert_eq!(W::zero(), W::splat(false));
            assert!(!W::zero().any());
            assert!(W::splat(true).any());
            assert_eq!(W::zero().first_lane(), None);
            assert_eq!(W::mask_lanes(0), W::zero());
            assert_eq!(W::mask_lanes(W::LANES), W::splat(true));
            for lane in [0, W::LANES / 2, W::LANES - 1] {
                let one = W::lane_one(lane);
                assert!(one.lane(lane), "lane {lane} of {}", W::LANES);
                assert_eq!(one.first_lane(), Some(lane));
                let mut w = W::splat(true);
                w.set_lane(lane, false);
                assert!(!w.lane(lane));
                w.set_lane(lane, true);
                assert_eq!(w, W::splat(true));
                // mask_lanes(l) covers exactly lanes 0..l.
                let m = W::mask_lanes(lane + 1);
                assert!(m.lane(lane));
                assert!((m & one) == one, "mask includes its top lane");
            }
        }
        probe_width::<bool>();
        probe_width::<u64>();
        probe_width::<W256>();
        probe_width::<W512>();
    }

    #[test]
    fn wide_first_lane_scans_limbs_in_order() {
        let mut w = W512::zero();
        w.set_lane(300, true);
        w.set_lane(450, true);
        assert_eq!(w.first_lane(), Some(300));
        w.set_lane(65, true);
        assert_eq!(w.first_lane(), Some(65));
        w.set_lane(0, true);
        assert_eq!(w.first_lane(), Some(0));
    }

    #[test]
    #[should_panic(expected = "lane 256 out of range for a 256-lane wide word")]
    fn wide_lane_out_of_range_panics() {
        let _ = W256::zero().lane(256);
    }

    #[test]
    fn wide_words_execute_the_tape_like_64_u64_batches() {
        // One W256 pass over the adder == four independent u64 passes.
        let p = SimProgram::compile(adder());
        let xs = p.input_slots("x").to_vec();
        let ys = p.input_slots("y").to_vec();
        let mut wide: Vec<W256> = p.initial_values();
        let mut narrow: Vec<Vec<u64>> = (0..4).map(|_| p.initial_values()).collect();
        for (bit, &slot) in xs.iter().chain(ys.iter()).enumerate() {
            let limbs = [
                0x0123_4567_89AB_CDEF_u64.rotate_left(bit as u32),
                0xFEDC_BA98_7654_3210_u64.rotate_right(bit as u32),
                0xAAAA_5555_F00F_0FF0 ^ (bit as u64),
                (bit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ];
            wide[slot as usize] = W256::from_limbs(limbs);
            for (k, values) in narrow.iter_mut().enumerate() {
                values[slot as usize] = limbs[k];
            }
        }
        p.exec(&mut wide);
        for values in narrow.iter_mut() {
            p.exec(values);
        }
        for (slot, w) in wide.iter().enumerate() {
            for (k, values) in narrow.iter().enumerate() {
                assert_eq!(w.limbs()[k], values[slot], "slot {slot} limb {k}");
            }
        }
    }

    // ---- opcode fusion -----------------------------------------------

    /// Exhaustive scalar equivalence of a fused vs canonical compile
    /// over every input assignment (combinational netlists, ≤16 input
    /// bits).
    fn assert_fused_equivalent(nl: Netlist) -> (usize, usize) {
        let canonical = SimProgram::compile(nl.clone());
        let fused = SimProgram::compile_fused(nl);
        assert!(fused.is_fused());
        let in_slots: Vec<(String, Vec<u32>)> = canonical
            .netlist()
            .input_ports()
            .iter()
            .map(|p| (p.name.clone(), canonical.input_slots(&p.name).to_vec()))
            .collect();
        let total_bits: usize = in_slots.iter().map(|(_, s)| s.len()).sum();
        assert!(total_bits <= 16, "too many input bits to sweep");
        let out_ports: Vec<String> = canonical
            .netlist()
            .output_ports()
            .iter()
            .map(|p| p.name.clone())
            .collect();
        for assignment in 0u32..(1u32 << total_bits) {
            let mut v_ref: Vec<bool> = canonical.initial_values();
            let mut v_fused: Vec<bool> = fused.initial_values();
            let mut bit = 0;
            for (name, slots) in &in_slots {
                for (k, &slot) in slots.iter().enumerate() {
                    let val = (assignment >> bit) & 1 == 1;
                    v_ref[slot as usize] = val;
                    v_fused[fused.input_slots(name)[k] as usize] = val;
                    bit += 1;
                }
            }
            canonical.exec(&mut v_ref);
            fused.exec(&mut v_fused);
            for name in &out_ports {
                let want: Vec<bool> = canonical
                    .output_slots(name)
                    .iter()
                    .map(|&s| v_ref[s as usize])
                    .collect();
                let got: Vec<bool> = fused
                    .output_slots(name)
                    .iter()
                    .map(|&s| v_fused[s as usize])
                    .collect();
                assert_eq!(got, want, "port {name} at assignment {assignment:#x}");
            }
        }
        (canonical.op_count(), fused.op_count())
    }

    #[test]
    fn fusion_folds_negated_inputs() {
        // y = a & !b: the Not disappears into an AndNot.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let nb = b.not(x[1]);
        let y = b.and(x[0], nb);
        b.output_bus("y", &[y]);
        let (before, after) = assert_fused_equivalent(b.finish());
        assert_eq!(before, 2);
        assert_eq!(after, 1, "Not folds into AndNot");
    }

    #[test]
    fn fusion_produces_nand_nor_xnor() {
        // Complemented two-input gates fuse into single complement ops.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let and = b.and(x[0], x[1]);
        let or = b.or(x[0], x[1]);
        let xor = b.xor(x[0], x[1]);
        let nand = b.not(and);
        let nor = b.not(or);
        let xnor = b.not(xor);
        b.output_bus("y", &[nand, nor, xnor]);
        let (before, after) = assert_fused_equivalent(b.finish());
        assert_eq!(before, 6);
        assert_eq!(after, 3, "each Not absorbs its single-use source");
    }

    #[test]
    fn fusion_collapses_and_or_chains() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 3);
        let a2 = b.and(x[0], x[1]);
        let a3 = b.and(a2, x[2]);
        let o2 = b.or(x[0], x[1]);
        let o3 = b.or(o2, x[2]);
        b.output_bus("y", &[a3, o3]);
        let (before, after) = assert_fused_equivalent(b.finish());
        assert_eq!(before, 4);
        assert_eq!(after, 2, "inner chain gates collapse into And3/Or3");
    }

    #[test]
    fn fusion_inverts_mux_selects_by_swapping_arms() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 3);
        let ns = b.not(x[2]);
        let y = b.mux(ns, x[0], x[1]);
        b.output_bus("y", &[y]);
        let (before, after) = assert_fused_equivalent(b.finish());
        assert_eq!(before, 2);
        assert_eq!(after, 1, "select inversion is free (arm swap)");
    }

    #[test]
    fn fusion_keeps_observable_nets() {
        // The Not feeds both an And and an output port: it must keep
        // its op and slot even though the And could absorb it.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let nb = b.not(x[1]);
        let y = b.and(x[0], nb);
        b.output_bus("y", &[y]);
        b.output_bus("nb", &[nb]);
        let (before, after) = assert_fused_equivalent(b.finish());
        assert_eq!(before, after, "observable Not cannot be elided");
    }

    #[test]
    fn fusion_shrinks_the_subtractor_tape() {
        // `sub` feeds `Not(b[i])` into each full-adder xor chain; the
        // fold turns those into Xnor ops and drops the inverters.
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (d, no_borrow) = b.sub(&x, &y);
        b.output_bus("d", &d);
        b.output_bus("ge", &[no_borrow]);
        let (before, after) = assert_fused_equivalent(b.finish());
        assert!(
            after < before,
            "fusion saved nothing on the subtractor ({before} -> {after})"
        );
    }

    #[test]
    fn fused_tapes_stay_levelized_and_blocked() {
        let p = SimProgram::compile_fused(adder());
        let base = p.comb_base as usize;
        for j in 0..p.op_count() {
            let out = base + j;
            for arg in [p.args_a[j], p.args_b[j], p.args_sel[j]] {
                assert!(
                    (arg as usize) < out,
                    "op {j} reads slot {arg} at or above its own slot {out}"
                );
            }
        }
        assert!(p.level_starts.windows(2).all(|w| w[0] <= w[1]));
        // Block boundaries tile the tape: first 0, last op_count,
        // strictly ascending, every block within the op budget.
        assert_eq!(p.block_starts[0], 0);
        assert_eq!(*p.block_starts.last().unwrap() as usize, p.op_count());
        assert!(p.block_starts.windows(2).all(|w| w[0] < w[1]));
        assert!(p
            .block_starts
            .windows(2)
            .all(|w| w[1] - w[0] <= super::BLOCK_OPS));
        assert_eq!(p.block_count(), p.block_starts.len() - 1);
    }

    #[test]
    fn blocked_exec_matches_monolithic_exec_on_large_tapes() {
        // A wide xor-reduction tree big enough to span several blocks.
        let mut b = Builder::new();
        let x = b.input_bus("x", 16);
        let mut acc = Vec::new();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let g = b.xor(x[i], x[j]);
                let h = b.and(g, x[(i + j) % 16]);
                acc.push(h);
            }
        }
        let mut out = acc[0];
        for &g in &acc[1..] {
            out = b.or(out, g);
        }
        b.output_bus("y", &[out]);
        let p = SimProgram::compile(b.finish());
        assert!(p.block_count() > 1, "tape too small to exercise blocking");
        let mut blocked: Vec<u64> = p.initial_values();
        let mut monolithic: Vec<u64> = p.initial_values();
        for (bit, &slot) in p.input_slots("x").to_vec().iter().enumerate() {
            let w = (bit as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            blocked[slot as usize] = w;
            monolithic[slot as usize] = w;
        }
        p.exec(&mut blocked);
        p.exec_range(&mut monolithic, 0..p.op_count());
        assert_eq!(blocked, monolithic);
    }

    #[test]
    #[should_panic(expected = "elided by opcode fusion; compile without fusion to probe it")]
    fn probing_an_elided_net_panics() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let nb = b.not(x[1]);
        let y = b.and(x[0], nb);
        b.output_bus("y", &[y]);
        let nl = b.finish();
        let p = SimProgram::compile_fused(nl);
        // Find the elided Not's net and probe its slot.
        let not_net = p
            .netlist()
            .gates()
            .iter()
            .position(|g| matches!(g, Gate::Not(_)))
            .expect("circuit contains a Not");
        let _ = p.slot(NetId::forged(not_net as u32));
    }

    #[test]
    fn stats_report_kinds_levels_and_savings() {
        let canonical = SimProgram::compile(adder());
        let s = canonical.stats();
        assert_eq!(s.ops, 17);
        assert_eq!(s.unfused_ops, 17);
        assert_eq!(s.fused_away(), 0);
        assert_eq!(s.levels, canonical.level_count());
        assert_eq!(s.blocks, canonical.block_count());
        assert_eq!(s.op_counts.len(), 12, "stable schema lists every opcode");
        let total: usize = s.op_counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, s.ops, "per-kind counts sum to the op count");

        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (d, _) = b.sub(&x, &y);
        b.output_bus("d", &d);
        let nl = b.finish();
        let unfused = nl.combinational_count();
        let fused = SimProgram::compile_fused(nl);
        let fs = fused.stats();
        assert_eq!(fs.unfused_ops, unfused);
        assert!(fs.fused_away() > 0);
        assert_eq!(fs.ops + fs.fused_away(), unfused);
        let fused_kinds: usize = fs
            .op_counts
            .iter()
            .filter(|(name, c)| {
                *c > 0
                    && matches!(
                        *name,
                        "andnot" | "ornot" | "nand" | "nor" | "xnor" | "and3" | "or3"
                    )
            })
            .count();
        assert!(fused_kinds > 0, "fused tape uses fused opcodes: {fs:?}");
    }

    #[test]
    fn fused_tapes_latch_like_canonical_tapes() {
        // Multi-cycle equivalence with a DFF whose data input hangs off
        // fusible logic: the d net is observable and must keep a slot.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let nb = b.not(x[1]);
        let d = b.and(x[0], nb);
        let q = b.dff(d, false);
        let out = b.xor(q, x[0]);
        b.output_bus("y", &[out]);
        let nl = b.finish();
        let canonical = SimProgram::compile(nl.clone());
        let fused = SimProgram::compile_fused(nl);
        let mut v_ref: Vec<bool> = canonical.initial_values();
        let mut v_fused: Vec<bool> = fused.initial_values();
        let mut s_ref = Vec::new();
        let mut s_fused = Vec::new();
        let y_ref = canonical.output_slots("y")[0] as usize;
        let y_fused = fused.output_slots("y")[0] as usize;
        for step in 0..16u32 {
            for (k, &slot) in canonical.input_slots("x").iter().enumerate() {
                let val = (step >> k) & 1 == 1;
                v_ref[slot as usize] = val;
                v_fused[fused.input_slots("x")[k] as usize] = val;
            }
            canonical.exec(&mut v_ref);
            fused.exec(&mut v_fused);
            assert_eq!(v_fused[y_fused], v_ref[y_ref], "step {step}");
            canonical.latch(&mut v_ref, &mut s_ref);
            fused.latch(&mut v_fused, &mut s_fused);
        }
    }
}
