//! The compiled simulation tape: a [`Netlist`] lowered once into an
//! immutable, levelized, structure-of-arrays gate program that both the
//! scalar [`crate::Simulator`] and the 64-lane
//! [`crate::BatchSimulator`] execute.
//!
//! Motivation: the original simulators re-walked the `Netlist` on every
//! `eval`, paying a `Gate` enum match plus `NetId` indirection per gate
//! per pass, and each simulator instance owned a full `Netlist` clone.
//! The tape moves all of that to compile time:
//!
//! - **Levelized opcode stream** — combinational gates are stably
//!   sorted by logic level (then creation order), so the tape is a flat
//!   `while`-free instruction sequence; `Const`/`Input`/`Dff` gates are
//!   excluded entirely (constants are baked into the initial value
//!   array, inputs are written by the testbench, DFF outputs are state).
//! - **Flat net slots** — every net is renumbered into a dense slot
//!   space: state slots first (inputs, constants, DFF outputs, in
//!   creation order), then one slot per tape op *in tape order*, so op
//!   `j` always writes slot `comb_base + j` and the wave fills the
//!   value array sequentially.
//! - **Precomputed port slot maps** — input/output port names resolve
//!   to slot vectors once, at compile time.
//! - **DFF slot pairs** — `step` latches through a `(q, d)` slot-pair
//!   list; no gate array scan.
//!
//! The program is immutable after compilation and intended to be shared
//! across threads via `Arc<SimProgram>`: per-simulator state shrinks to
//! one flat value array (`bool` per slot for the scalar front-end,
//! `u64` per slot for the 64-lane one), so a thread-sharded verifier
//! spawns workers by cloning an `Arc` instead of a `Netlist`.
//!
//! Compilation requires a structurally valid netlist (see
//! [`Netlist::validate`]): gate fanin must be topologically ordered
//! (only `Dff.d` may look forward). Out-of-range references panic at
//! compile time; behaviour on combinational forward-references is
//! unspecified (the lint engine exists to reject those before they get
//! here).

use crate::netlist::{Gate, NetId, Netlist, Port};
use std::ops::{BitAnd, BitOr, BitXor, Not};
use std::sync::Arc;

/// A value domain the tape can execute over: `bool` (one simulation)
/// or `u64` (64 bit-parallel lanes). `Mux` lowers to
/// `(sel & b) | (!sel & a)`, which is exact in both domains.
pub trait SimWord:
    Copy
    + PartialEq
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + 'static
{
    /// The value with every lane set to `bit`.
    fn splat(bit: bool) -> Self;
}

impl SimWord for bool {
    #[inline]
    fn splat(bit: bool) -> bool {
        bit
    }
}

impl SimWord for u64 {
    #[inline]
    fn splat(bit: bool) -> u64 {
        if bit {
            u64::MAX
        } else {
            0
        }
    }
}

/// Tape opcode. Only combinational gates are lowered; everything else
/// lives in the state region of the value array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpCode {
    Not,
    And,
    Or,
    Xor,
    Mux,
}

/// One tape op decoded for external analyzers (the CNF encoder in
/// `hwperm-sat`, fault-site enumeration, …). All operands are
/// value-array slots, already resolved — an analyzer walking
/// [`SimProgram::op`] in tape order sees exactly the data flow
/// [`SimProgram::exec`] executes, with op `j` defining slot
/// `comb_base() + j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeOp {
    /// `out = !a`.
    Not {
        /// Operand slot.
        a: u32,
    },
    /// `out = a & b`.
    And {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = a | b`.
    Or {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = a ^ b`.
    Xor {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `out = sel ? b : a`.
    Mux {
        /// Select slot.
        sel: u32,
        /// Slot taken when `sel` is 0.
        a: u32,
        /// Slot taken when `sel` is 1.
        b: u32,
    },
}

/// One D flip-flop's slot pair, as exposed to external analyzers: the
/// state slot `q`, the slot `d` its next value settles into, and the
/// reset value. See [`SimProgram::dff_slot_pairs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DffSlotPair {
    /// The register's state slot (read by the combinational wave).
    pub q: u32,
    /// The slot holding the settled next-state value.
    pub d: u32,
    /// Reset/initial value.
    pub init: bool,
}

/// A named port resolved to flat value-array slots (LSB first).
#[derive(Debug, Clone)]
struct SlotPort {
    name: String,
    slots: Vec<u32>,
}

/// One D flip-flop as a slot pair: `q` (its state slot) and `d` (the
/// slot its data input settles into).
#[derive(Debug, Clone, Copy)]
struct DffSlots {
    q: u32,
    d: u32,
    init: bool,
}

/// A [`Netlist`] compiled to the flat simulation tape. See the module
/// docs for the layout; construct with [`SimProgram::compile`] and
/// share across simulator instances (and threads) via
/// [`SimProgram::compile_shared`].
#[derive(Debug)]
pub struct SimProgram {
    /// The source netlist, retained for port metadata, diagnostics and
    /// structural probing ([`SimProgram::netlist`]).
    netlist: Netlist,
    /// Net index → value-array slot.
    slot_of: Vec<u32>,
    /// First combinational slot; tape op `j` writes `comb_base + j`.
    comb_base: u32,
    /// Structure-of-arrays op stream, levelized (level, then creation
    /// order). `args_a[j]`/`args_b[j]` are operand slots (`b == a` for
    /// `Not`); `args_sel[j]` is the select slot (only read for `Mux`).
    opcodes: Vec<OpCode>,
    args_a: Vec<u32>,
    args_b: Vec<u32>,
    args_sel: Vec<u32>,
    /// Tape offset where each level starts; `level_starts.last()` is
    /// the op count. Level `k` (1-based) occupies
    /// `level_starts[k-1]..level_starts[k]`.
    level_starts: Vec<u32>,
    /// Constant slots and their baked values.
    consts: Vec<(u32, bool)>,
    /// DFF slot pairs, in creation order.
    dffs: Vec<DffSlots>,
    /// Input/output ports resolved to slots, in declaration order.
    inputs: Vec<SlotPort>,
    outputs: Vec<SlotPort>,
}

impl SimProgram {
    /// Lowers a validated netlist into the tape. `O(gates)` one-time
    /// cost; the result is immutable.
    ///
    /// # Panics
    /// Panics if any gate or port references an out-of-range net.
    /// Combinational forward references (structurally invalid netlists)
    /// compile but execute in an unspecified order — run
    /// [`Netlist::validate`] first if provenance is in doubt.
    pub fn compile(netlist: Netlist) -> SimProgram {
        let n = netlist.len();
        let in_range = |net: NetId, what: &str| {
            assert!(
                net.index() < n,
                "cannot compile: {what} references out-of-range net {}",
                net.index()
            );
            net
        };
        // Logic levels, as in `Netlist::gate_depth`: state-region gates
        // are level 0, combinational gates one past their deepest fanin.
        let mut level = vec![0u32; n];
        let mut max_level = 0u32;
        for (i, g) in netlist.gates().iter().enumerate() {
            if g.is_combinational() {
                let deepest = g
                    .fanin()
                    .map(|f| level[in_range(f, "gate").index()])
                    .max()
                    .unwrap_or(0);
                level[i] = deepest + 1;
                max_level = max_level.max(level[i]);
            }
        }
        // Stable level-major order: bucket combinational gates by level,
        // creation order within a level.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize];
        let mut state_slots = 0u32;
        for (i, g) in netlist.gates().iter().enumerate() {
            if g.is_combinational() {
                buckets[level[i] as usize - 1].push(i as u32);
            } else {
                state_slots += 1;
            }
        }
        // Slot assignment: state region first (creation order), then
        // one slot per op in tape order.
        let mut slot_of = vec![0u32; n];
        let mut next_state = 0u32;
        for (i, g) in netlist.gates().iter().enumerate() {
            if !g.is_combinational() {
                slot_of[i] = next_state;
                next_state += 1;
            }
        }
        let comb_base = state_slots;
        let mut level_starts = Vec::with_capacity(max_level as usize + 1);
        level_starts.push(0u32);
        let mut tape_order = Vec::with_capacity(n - state_slots as usize);
        for bucket in &buckets {
            for &i in bucket {
                slot_of[i as usize] = comb_base + tape_order.len() as u32;
                tape_order.push(i);
            }
            level_starts.push(tape_order.len() as u32);
        }
        // Lower the ops now that every net has a slot.
        let mut opcodes = Vec::with_capacity(tape_order.len());
        let mut args_a = Vec::with_capacity(tape_order.len());
        let mut args_b = Vec::with_capacity(tape_order.len());
        let mut args_sel = Vec::with_capacity(tape_order.len());
        for &i in &tape_order {
            let (code, a, b, sel) = match netlist.gates()[i as usize] {
                Gate::Not(x) => (OpCode::Not, x, x, x),
                Gate::And(x, y) => (OpCode::And, x, y, x),
                Gate::Or(x, y) => (OpCode::Or, x, y, x),
                Gate::Xor(x, y) => (OpCode::Xor, x, y, x),
                Gate::Mux { sel, a, b } => (OpCode::Mux, a, b, sel),
                Gate::Const(_) | Gate::Input | Gate::Dff { .. } => {
                    unreachable!("state gates are never lowered to ops")
                }
            };
            opcodes.push(code);
            args_a.push(slot_of[a.index()]);
            args_b.push(slot_of[b.index()]);
            args_sel.push(slot_of[sel.index()]);
        }
        // State metadata: baked constants and DFF slot pairs.
        let mut consts = Vec::new();
        let mut dffs = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            match *g {
                Gate::Const(c) => consts.push((slot_of[i], c)),
                Gate::Dff { d, init } => dffs.push(DffSlots {
                    q: slot_of[i],
                    d: slot_of[in_range(d, "DFF").index()],
                    init,
                }),
                _ => {}
            }
        }
        let resolve = |ports: &[Port], dir: &str| -> Vec<SlotPort> {
            ports
                .iter()
                .map(|p| SlotPort {
                    name: p.name.clone(),
                    slots: p
                        .nets
                        .iter()
                        .map(|&net| slot_of[in_range(net, dir).index()])
                        .collect(),
                })
                .collect()
        };
        let inputs = resolve(netlist.input_ports(), "input port");
        let outputs = resolve(netlist.output_ports(), "output port");
        SimProgram {
            netlist,
            slot_of,
            comb_base,
            opcodes,
            args_a,
            args_b,
            args_sel,
            level_starts,
            consts,
            dffs,
            inputs,
            outputs,
        }
    }

    /// [`SimProgram::compile`], wrapped for cross-thread sharing: every
    /// simulator built from the same `Arc` shares one tape.
    pub fn compile_shared(netlist: Netlist) -> Arc<SimProgram> {
        Arc::new(Self::compile(netlist))
    }

    /// The source netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of value-array slots (= nets in the source netlist).
    pub fn slot_count(&self) -> usize {
        self.slot_of.len()
    }

    /// Number of tape ops (= combinational gates).
    pub fn op_count(&self) -> usize {
        self.opcodes.len()
    }

    /// Number of logic levels in the tape (0 for a state-only netlist).
    pub fn level_count(&self) -> usize {
        self.level_starts.len() - 1
    }

    /// Number of D flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// The value-array slot a net settles into.
    ///
    /// # Panics
    /// Panics if the net is out of range for the source netlist.
    #[inline]
    pub fn slot(&self, net: NetId) -> usize {
        self.slot_of[net.index()] as usize
    }

    /// First combinational slot: slots `0..comb_base()` hold state
    /// (inputs, constants, DFF outputs, in creation order), and tape op
    /// `j` writes slot `comb_base() + j`. External tape drivers (the
    /// fault-overlay executors in `hwperm-faults`) use this to translate
    /// a combinational net's slot into its tape-op position.
    #[inline]
    pub fn comb_base(&self) -> usize {
        self.comb_base as usize
    }

    /// `true` iff the net is a DFF output (its slot is a register state
    /// slot that [`SimProgram::latch`] overwrites on every clock edge).
    ///
    /// # Panics
    /// Panics if the net is out of range for the source netlist.
    pub fn is_dff_net(&self, net: NetId) -> bool {
        matches!(self.netlist.gates()[net.index()], Gate::Dff { .. })
    }

    /// A fresh per-instance value array: all-zero except baked
    /// constants and DFF reset values.
    pub fn initial_values<W: SimWord>(&self) -> Vec<W> {
        let mut values = vec![W::splat(false); self.slot_count()];
        for &(slot, c) in &self.consts {
            values[slot as usize] = W::splat(c);
        }
        for d in &self.dffs {
            values[d.q as usize] = W::splat(d.init);
        }
        values
    }

    /// Combinational settle: executes the tape once over `values`.
    /// Input and DFF slots are read, never written; constant slots were
    /// baked at construction.
    #[inline]
    pub fn exec<W: SimWord>(&self, values: &mut [W]) {
        self.exec_range(values, 0..self.opcodes.len());
    }

    /// Executes tape ops `range` (op `j` writes slot
    /// `comb_base() + j`). Segmented execution is what lets an external
    /// driver interpose on the wave mid-tape: run `0..j+1`, overwrite op
    /// `j`'s output slot, then run `j+1..op_count()` — the mechanism
    /// behind `hwperm-faults`' non-destructive stuck-at overlays. The
    /// full-tape [`SimProgram::exec`] is this with `0..op_count()`.
    ///
    /// Correctness requires segments be executed in ascending,
    /// contiguous order starting at 0 (the tape is levelized, so op `j`
    /// only reads slots below `comb_base() + j`).
    ///
    /// # Panics
    /// Panics if `range` exceeds `0..op_count()`.
    #[inline]
    pub fn exec_range<W: SimWord>(&self, values: &mut [W], range: std::ops::Range<usize>) {
        assert!(
            range.end <= self.opcodes.len(),
            "tape range {range:?} exceeds the {}-op tape",
            self.opcodes.len()
        );
        let base = self.comb_base as usize;
        for j in range {
            let a = values[self.args_a[j] as usize];
            let v = match self.opcodes[j] {
                OpCode::Not => !a,
                OpCode::And => a & values[self.args_b[j] as usize],
                OpCode::Or => a | values[self.args_b[j] as usize],
                OpCode::Xor => a ^ values[self.args_b[j] as usize],
                OpCode::Mux => {
                    let s = values[self.args_sel[j] as usize];
                    (s & values[self.args_b[j] as usize]) | (!s & a)
                }
            };
            values[base + j] = v;
        }
    }

    /// Clock edge: every DFF latches its settled `d` slot into its `q`
    /// slot. Two-phase through `scratch` so flop-to-flop chains all
    /// sample the pre-edge wave, exactly like the gate-walking
    /// simulators did with their separate state array.
    pub fn latch<W: SimWord>(&self, values: &mut [W], scratch: &mut Vec<W>) {
        scratch.clear();
        scratch.extend(self.dffs.iter().map(|d| values[d.d as usize]));
        for (d, &v) in self.dffs.iter().zip(scratch.iter()) {
            values[d.q as usize] = v;
        }
    }

    /// Resets every DFF slot to its `init` value (other slots are left
    /// as they are, like the pre-tape simulators).
    pub fn reset<W: SimWord>(&self, values: &mut [W]) {
        for d in &self.dffs {
            values[d.q as usize] = W::splat(d.init);
        }
    }

    /// Decodes tape op `j` for external analyzers. The op defines slot
    /// `comb_base() + j`; operands are value-array slots strictly below
    /// that (the tape is levelized).
    ///
    /// # Panics
    /// Panics if `j >= op_count()`.
    #[inline]
    pub fn op(&self, j: usize) -> TapeOp {
        let (a, b, sel) = (self.args_a[j], self.args_b[j], self.args_sel[j]);
        match self.opcodes[j] {
            OpCode::Not => TapeOp::Not { a },
            OpCode::And => TapeOp::And { a, b },
            OpCode::Or => TapeOp::Or { a, b },
            OpCode::Xor => TapeOp::Xor { a, b },
            OpCode::Mux => TapeOp::Mux { sel, a, b },
        }
    }

    /// Iterates the constant slots and their baked values, in creation
    /// order.
    pub fn const_slots(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.consts.iter().copied()
    }

    /// Iterates the DFF slot pairs, in creation order — the same order
    /// [`SimProgram::latch`] processes them.
    pub fn dff_slot_pairs(&self) -> impl Iterator<Item = DffSlotPair> + '_ {
        self.dffs.iter().map(|d| DffSlotPair {
            q: d.q,
            d: d.d,
            init: d.init,
        })
    }

    /// Slots of the named input port, with the same panic diagnostics
    /// as the simulators' `set_input` (port name plus every known input
    /// and its width).
    ///
    /// # Panics
    /// Panics if the port does not exist.
    #[inline]
    pub fn input_slots(&self, name: &str) -> &[u32] {
        match self.inputs.iter().find(|p| p.name == name) {
            Some(p) => &p.slots,
            None => {
                // Delegate to the shared lookup for the exact message.
                crate::sim::lookup_input_port(&self.netlist, name);
                unreachable!("lookup panics when the slot map has no entry")
            }
        }
    }

    /// Slots of the named output port.
    ///
    /// # Panics
    /// Panics if the port does not exist.
    #[inline]
    pub fn output_slots(&self, name: &str) -> &[u32] {
        self.outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.slots[..])
            .unwrap_or_else(|| panic!("no output port named {name:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn adder() -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        b.finish()
    }

    #[test]
    fn tape_shape_matches_netlist() {
        let nl = adder();
        let comb = nl.combinational_count();
        let p = SimProgram::compile(nl.clone());
        assert_eq!(p.slot_count(), nl.len());
        assert_eq!(p.op_count(), comb);
        assert_eq!(p.dff_count(), 0);
        assert!(p.level_count() >= 1);
        assert_eq!(
            p.level_count(),
            nl.gate_depth(),
            "tape levels = combinational gate depth"
        );
    }

    #[test]
    fn slots_are_a_permutation_of_nets() {
        let p = SimProgram::compile(adder());
        let mut seen = vec![false; p.slot_count()];
        for i in 0..p.slot_count() {
            let s = p.slot(NetId::forged(i as u32));
            assert!(!std::mem::replace(&mut seen[s], true), "slot {s} reused");
        }
        assert!(seen.iter().all(|&v| v), "every slot assigned exactly once");
    }

    #[test]
    fn tape_is_levelized() {
        // Every op's operands live strictly below the op's own slot, so
        // the sequential exec order is a valid topological schedule.
        let p = SimProgram::compile(adder());
        let base = p.comb_base as usize;
        for j in 0..p.op_count() {
            let out = base + j;
            for arg in [p.args_a[j], p.args_b[j], p.args_sel[j]] {
                assert!(
                    (arg as usize) < out,
                    "op {j} reads slot {arg} at or above its own slot {out}"
                );
            }
        }
        // And level starts are monotonically non-decreasing.
        assert!(p.level_starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn constants_are_baked_into_initial_values() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let t = b.constant(true);
        let f = b.constant(false);
        let and = b.and(x[0], t);
        b.output_bus("y", &[and, f]);
        let p = SimProgram::compile(b.finish());
        let values: Vec<bool> = p.initial_values();
        for &(slot, c) in &p.consts {
            assert_eq!(values[slot as usize], c);
        }
    }

    #[test]
    fn dff_pairs_latch_two_phase() {
        // q1 -> q2 flop chain: one latch moves q1's value into q2 while
        // q1 simultaneously takes the input — no shoot-through.
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let q1 = b.dff(x[0], false);
        let q2 = b.dff(q1, true);
        b.output_bus("y", &[q2]);
        let p = SimProgram::compile(b.finish());
        assert_eq!(p.dff_count(), 2);
        let mut values: Vec<bool> = p.initial_values();
        let x_slot = p.input_slots("x")[0] as usize;
        let y_slot = p.output_slots("y")[0] as usize;
        assert!(values[y_slot], "q2 resets to 1");
        values[x_slot] = true;
        let mut scratch = Vec::new();
        p.exec(&mut values);
        p.latch(&mut values, &mut scratch); // q1 <- 1, q2 <- old q1 (0)
        assert!(!values[y_slot]);
        p.exec(&mut values);
        p.latch(&mut values, &mut scratch); // q2 <- 1
        assert!(values[y_slot]);
        p.reset(&mut values);
        assert!(values[y_slot], "reset restores init");
    }

    #[test]
    fn segmented_exec_matches_full_exec() {
        // Splitting the tape at every position and overwriting nothing
        // must reproduce the one-shot wave exactly — the contract the
        // fault-overlay executors rely on.
        let p = SimProgram::compile(adder());
        let mut reference: Vec<bool> = p.initial_values();
        let x = p.input_slots("x").to_vec();
        for (bit, &slot) in x.iter().enumerate() {
            reference[slot as usize] = (0b1011 >> bit) & 1 == 1;
        }
        let seeded = reference.clone();
        p.exec(&mut reference);
        for split in 0..=p.op_count() {
            let mut values = seeded.clone();
            p.exec_range(&mut values, 0..split);
            p.exec_range(&mut values, split..p.op_count());
            assert_eq!(values, reference, "split at op {split}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the 17-op tape")]
    fn exec_range_rejects_out_of_range_ops() {
        let p = SimProgram::compile(adder());
        assert_eq!(p.op_count(), 17, "adder tape size drifted; fix the test");
        let mut values: Vec<bool> = p.initial_values();
        p.exec_range(&mut values, 0..p.op_count() + 1);
    }

    #[test]
    fn comb_base_separates_state_from_tape_slots() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let q = b.dff(x[0], false);
        let g = b.and(x[1], q);
        b.output_bus("y", &[g]);
        let nl = b.finish();
        let p = SimProgram::compile(nl.clone());
        for (i, gate) in nl.gates().iter().enumerate() {
            let net = NetId::forged(i as u32);
            assert_eq!(
                p.slot(net) >= p.comb_base(),
                gate.is_combinational(),
                "net {i}"
            );
            assert_eq!(
                p.is_dff_net(net),
                matches!(gate, Gate::Dff { .. }),
                "net {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out-of-range net")]
    fn out_of_range_fanin_rejected_at_compile_time() {
        let nl = Netlist {
            gates: vec![Gate::Input, Gate::Not(NetId::forged(7))],
            ..Netlist::default()
        };
        let _ = SimProgram::compile(nl);
    }

    #[test]
    fn port_slot_maps_resolve_by_name() {
        let p = SimProgram::compile(adder());
        assert_eq!(p.input_slots("x").len(), 4);
        assert_eq!(p.input_slots("y").len(), 4);
        assert_eq!(p.output_slots("s").len(), 4);
        assert_eq!(p.output_slots("c").len(), 1);
    }
}
