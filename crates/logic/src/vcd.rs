//! VCD (Value Change Dump) waveform export.
//!
//! The standard interchange format hardware engineers inspect pipelines
//! with (IEEE 1364 §18). [`Tracer`] samples named ports of a simulated
//! netlist once per clock and renders a VCD file showing, e.g., the
//! pipelined converter filling and then sustaining one permutation per
//! clock — the visual counterpart of the paper's throughput claim.

use crate::netlist::Port;
use crate::{NetId, Netlist, Simulator};
use std::fmt::Write as _;

/// Records per-cycle values of selected ports for VCD export.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// Traced buses: (name, nets, VCD id code).
    signals: Vec<(String, Vec<NetId>, String)>,
    /// One sample per [`Tracer::sample`] call: bit values per signal,
    /// MSB-first strings as VCD wants them.
    samples: Vec<Vec<String>>,
}

/// Generates the short identifier codes VCD uses (`!`, `"`, `#`, …).
fn id_code(i: usize) -> String {
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

impl Tracer {
    /// Traces the named ports (inputs or outputs) of `netlist`.
    ///
    /// # Panics
    /// Panics if a named port does not exist.
    pub fn new(netlist: &Netlist, ports: &[&str]) -> Self {
        let find = |name: &str| -> &Port {
            netlist
                .input_port(name)
                .or_else(|| netlist.output_port(name))
                .unwrap_or_else(|| panic!("no port named {name:?}"))
        };
        let signals = ports
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                let port = find(name);
                (name.to_string(), port.nets.clone(), id_code(i))
            })
            .collect();
        Tracer {
            signals,
            samples: Vec::new(),
        }
    }

    /// Records the current value of every traced port. Call once per
    /// clock, after `sim.eval()`.
    pub fn sample(&mut self, sim: &Simulator) {
        let row = self
            .signals
            .iter()
            .map(|(_, nets, _)| {
                // VCD binary vectors are written MSB first.
                nets.iter()
                    .rev()
                    .map(|&n| if sim.probe(n) { '1' } else { '0' })
                    .collect()
            })
            .collect();
        self.samples.push(row);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Renders the recording as a VCD document (1 ns per sample).
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        writeln!(out, "$date reproduction run $end").unwrap();
        writeln!(out, "$version hwperm-logic tracer $end").unwrap();
        writeln!(out, "$timescale 1ns $end").unwrap();
        writeln!(out, "$scope module dut $end").unwrap();
        for (name, nets, id) in &self.signals {
            writeln!(out, "$var wire {} {} {} $end", nets.len(), id, name).unwrap();
        }
        writeln!(out, "$upscope $end").unwrap();
        writeln!(out, "$enddefinitions $end").unwrap();
        let mut last: Vec<Option<&String>> = vec![None; self.signals.len()];
        for (t, row) in self.samples.iter().enumerate() {
            let mut stamped = false;
            for (i, value) in row.iter().enumerate() {
                if last[i] == Some(value) {
                    continue; // VCD records changes only
                }
                if !stamped {
                    writeln!(out, "#{t}").unwrap();
                    stamped = true;
                }
                let (_, nets, id) = &self.signals[i];
                if nets.len() == 1 {
                    writeln!(out, "{value}{id}").unwrap();
                } else {
                    writeln!(out, "b{value} {id}").unwrap();
                }
                last[i] = Some(value);
            }
        }
        writeln!(out, "#{}", self.samples.len()).unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn toggler() -> (Simulator, Tracer) {
        let mut b = Builder::new();
        let q = b.dff_deferred(false);
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output_bus("q", &[q]);
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let nl = b.finish();
        let tracer = Tracer::new(&nl, &["q", "y"]);
        (Simulator::new(nl), tracer)
    }

    #[test]
    fn header_declares_all_signals() {
        let (_, tracer) = toggler();
        let vcd = tracer.to_vcd();
        assert!(vcd.contains("$var wire 1 ! q $end"));
        assert!(vcd.contains("$var wire 4 \" y $end"));
        assert!(vcd.contains("$enddefinitions"));
    }

    #[test]
    fn records_toggle_waveform() {
        let (mut sim, mut tracer) = toggler();
        sim.set_input_u64("x", 0b1010);
        for _ in 0..4 {
            sim.eval();
            tracer.sample(&sim);
            sim.step();
        }
        assert_eq!(tracer.len(), 4);
        let vcd = tracer.to_vcd();
        // q toggles 0,1,0,1 → changes at t = 0,1,2,3.
        assert!(vcd.contains("#0\n0!"), "{vcd}");
        assert!(vcd.contains("#1\n1!"), "{vcd}");
        // y is constant after t0: exactly one vector record.
        assert_eq!(vcd.matches("b1010 \"").count(), 1, "{vcd}");
    }

    #[test]
    fn change_only_encoding() {
        let (mut sim, mut tracer) = toggler();
        sim.set_input_u64("x", 3);
        for _ in 0..6 {
            sim.eval();
            tracer.sample(&sim);
            // No step: nothing changes.
        }
        let vcd = tracer.to_vcd();
        // Only the initial timestamp plus the trailing end marker.
        assert_eq!(vcd.matches('#').count(), 2, "{vcd}");
    }

    #[test]
    fn id_codes_are_printable_and_distinct() {
        let ids: Vec<String> = (0..200).map(id_code).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 200);
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }

    #[test]
    #[should_panic(expected = "no port named")]
    fn unknown_port_rejected() {
        let b = Builder::new();
        Tracer::new(&b.finish(), &["nope"]);
    }
}
