//! Bus-level combinators: the arithmetic and steering blocks the paper's
//! circuits are drawn with (adders, `A−B` subtractors, constant
//! comparators, one-hot MUXes, decoders, shift-and-add constant
//! multipliers).

use crate::builder::{Builder, Bus};
use crate::netlist::NetId;
use hwperm_bignum::Ubig;

impl Builder {
    /// Zero-extends `bus` to `width` bits.
    pub fn zext(&mut self, bus: &[NetId], width: usize) -> Bus {
        assert!(width >= bus.len(), "zext cannot shrink a bus");
        let zero = self.constant(false);
        let mut out = bus.to_vec();
        out.resize(width, zero);
        out
    }

    /// Full adder: returns `(sum, carry_out)`. The carry-out net is
    /// marked as a carry-chain member for the timing model (real FPGAs
    /// route ripple carries through hardened logic an order of magnitude
    /// faster than general LUT hops).
    fn full_add(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        // Normalize a constant operand into the `b` slot (addition is
        // commutative), then fold the two-constants case outright: the
        // sum is `a` or `¬a` and the carry is a constant or `a`. Going
        // through the general xor chain instead would build `¬a` and
        // immediately fold it back out, stranding the inverter.
        let (a, b) = if self.const_value(a).is_some() && self.const_value(b).is_none() {
            (b, a)
        } else {
            (a, b)
        };
        if let (Some(bv), Some(cv)) = (self.const_value(b), self.const_value(cin)) {
            let sum = if bv == cv { a } else { self.not(a) };
            let cout = if bv == cv { self.constant(bv) } else { a };
            return (sum, cout);
        }
        // Constant carry-ins (the +1 of two's-complement subtraction,
        // the 0 into an adder's LSB) get the specialized half-adder
        // forms — the general expression would contain redundant
        // (untestable-fault) structure like cout = (a∧b) ∨ (a⊕b).
        let (sum, cout) = match self.const_value(cin) {
            Some(false) => {
                let sum = self.xor(a, b);
                let cout = self.and(a, b);
                (sum, cout)
            }
            Some(true) => {
                let axb = self.xor(a, b);
                let sum = self.not(axb);
                let cout = self.or(a, b);
                (sum, cout)
            }
            None => {
                let axb = self.xor(a, b);
                let sum = self.xor(axb, cin);
                let t1 = self.and(a, b);
                let t2 = self.and(axb, cin);
                let cout = self.or(t1, t2);
                (sum, cout)
            }
        };
        self.mark_carry(cout);
        (sum, cout)
    }

    /// Ripple-carry addition of equal-or-unequal width buses; the result
    /// has the width of the wider operand and the final carry is returned
    /// separately.
    pub fn add(&mut self, a: &[NetId], b: &[NetId]) -> (Bus, NetId) {
        let width = a.len().max(b.len());
        let a = self.zext(a, width);
        let b = self.zext(b, width);
        let mut carry = self.constant(false);
        let mut sum = Vec::with_capacity(width);
        for i in 0..width {
            let (s, c) = self.full_add(a[i], b[i], carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Addition with the carry kept: result is one bit wider than the
    /// wider operand, so no overflow is possible.
    pub fn add_expand(&mut self, a: &[NetId], b: &[NetId]) -> Bus {
        let (mut sum, carry) = self.add(a, b);
        sum.push(carry);
        sum
    }

    /// The paper's `A−B` block: two's-complement subtraction
    /// `a − b`, returning `(difference, no_borrow)` where `no_borrow = 1`
    /// iff `a ≥ b` (the difference is valid).
    pub fn sub(&mut self, a: &[NetId], b: &[NetId]) -> (Bus, NetId) {
        let width = a.len().max(b.len());
        let a = self.zext(a, width);
        let b = self.zext(b, width);
        let mut carry = self.constant(true); // +1 of the two's complement
        let mut diff = Vec::with_capacity(width);
        for i in 0..width {
            let nb = self.not(b[i]);
            let (d, c) = self.full_add(a[i], nb, carry);
            diff.push(d);
            carry = c;
        }
        (diff, carry)
    }

    /// Wrapping subtraction `a − b mod 2^width`. Same ripple as
    /// [`Builder::sub`] but the final carry-out is not observable, so
    /// its gates are never built — use this when the borrow is known
    /// dead (e.g. the Fig. 1 stage subtract, where the true difference
    /// provably fits the truncated width).
    pub fn sub_mod(&mut self, a: &[NetId], b: &[NetId]) -> Bus {
        let width = a.len().max(b.len());
        let a = self.zext(a, width);
        let b = self.zext(b, width);
        let mut carry = self.constant(true);
        let mut diff = Vec::with_capacity(width);
        for i in 0..width {
            let nb = self.not(b[i]);
            if i + 1 == width {
                diff.push(self.sum3(a[i], nb, carry));
            } else {
                let (d, c) = self.full_add(a[i], nb, carry);
                diff.push(d);
                carry = c;
            }
        }
        diff
    }

    /// Three-input sum `a ⊕ b ⊕ cin` with the two-constants case folded
    /// up front (two constant operands cancel or reduce to a single
    /// inversion; chaining two xors instead would strand an inverter).
    fn sum3(&mut self, a: NetId, b: NetId, cin: NetId) -> NetId {
        let (a, b) = if self.const_value(a).is_some() && self.const_value(b).is_none() {
            (b, a)
        } else {
            (a, b)
        };
        if let (Some(bv), Some(cv)) = (self.const_value(b), self.const_value(cin)) {
            return if bv == cv { a } else { self.not(a) };
        }
        let axb = self.xor(a, b);
        self.xor(axb, cin)
    }

    /// Comparator `a ≥ c` against a build-time constant — the primitive
    /// of the Fig. 1 comparator bank. Constant bits specialize the chain:
    /// a 0-bit costs an OR, a 1-bit an AND.
    pub fn ge_const(&mut self, a: &[NetId], c: &Ubig) -> NetId {
        if c.bit_len() > a.len() {
            // The bus can never reach the constant.
            return self.constant(false);
        }
        let mut ge = self.constant(true);
        for (i, &bit) in a.iter().enumerate() {
            ge = if c.bit(i) {
                self.and(bit, ge)
            } else {
                self.or(bit, ge)
            };
            // Comparison is subtraction: the recurrence maps onto the
            // same hardened carry chain in real devices.
            self.mark_carry(ge);
        }
        ge
    }

    /// Comparator `a ≥ b` for two buses (LSB-first suffix recurrence).
    pub fn ge(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let width = a.len().max(b.len());
        let a = self.zext(a, width);
        let b = self.zext(b, width);
        let mut ge = self.constant(true);
        for i in 0..width {
            // ge_i = (a_i & !b_i) | ((a_i ⊕ b_i)' & ge_{i-1})
            let gt = {
                let nb = self.not(b[i]);
                self.and(a[i], nb)
            };
            let eq = {
                let x = self.xor(a[i], b[i]);
                self.not(x)
            };
            let keep = self.and(eq, ge);
            ge = self.or(gt, keep);
            self.mark_carry(ge);
        }
        ge
    }

    /// Equality of two buses (zero-extended to the wider width).
    pub fn eq(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let width = a.len().max(b.len());
        let a = self.zext(a, width);
        let b = self.zext(b, width);
        let mut acc = self.constant(true);
        for i in 0..width {
            let x = self.xor(a[i], b[i]);
            let same = self.not(x);
            acc = self.and(acc, same);
        }
        acc
    }

    /// Equality with a constant.
    pub fn eq_const(&mut self, a: &[NetId], c: &Ubig) -> NetId {
        if c.bit_len() > a.len() {
            return self.constant(false);
        }
        let mut acc = self.constant(true);
        for (i, &bit) in a.iter().enumerate() {
            let term = if c.bit(i) { bit } else { self.not(bit) };
            acc = self.and(acc, term);
        }
        acc
    }

    /// Bitwise 2:1 mux over buses: `sel ? b : a`.
    pub fn mux_bus(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Bus {
        let width = a.len().max(b.len());
        let a = self.zext(a, width);
        let b = self.zext(b, width);
        (0..width).map(|i| self.mux(sel, a[i], b[i])).collect()
    }

    /// The paper's one-hot MUX: `out = OR_i (choices[i] AND onehot[i])`.
    /// Exactly one select line is expected to be high; if none is, the
    /// output is zero.
    pub fn one_hot_mux(&mut self, onehot: &[NetId], choices: &[&[NetId]]) -> Bus {
        assert_eq!(onehot.len(), choices.len(), "one_hot_mux arity mismatch");
        self.record_one_hot_bank(onehot);
        let width = choices.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut out = vec![self.constant(false); width];
        for (&sel, &choice) in onehot.iter().zip(choices) {
            for (i, &bit) in choice.iter().enumerate() {
                let masked = self.and(sel, bit);
                out[i] = self.or(out[i], masked);
            }
        }
        out
    }

    /// Binary-select mux tree: `choices[sel]`. Missing high choices
    /// (when `choices.len()` is not a power of two) read as zero.
    pub fn binary_mux(&mut self, sel: &[NetId], choices: &[&[NetId]]) -> Bus {
        assert!(!choices.is_empty());
        let width = choices.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut layer: Vec<Bus> = choices.iter().map(|c| self.zext(c, width)).collect();
        for &s in sel {
            let zero_bus = vec![self.constant(false); width];
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                let low = &pair[0];
                let high = pair.get(1).unwrap_or(&zero_bus);
                next.push(self.mux_bus(s, low, high));
            }
            layer = next;
            if layer.len() == 1 {
                break;
            }
        }
        assert_eq!(layer.len(), 1, "select bus too narrow for choice count");
        layer.pop().unwrap()
    }

    /// Decoder: one-hot lines `out[v] = (sel == v)` for `v < count`.
    pub fn decoder(&mut self, sel: &[NetId], count: usize) -> Vec<NetId> {
        (0..count)
            .map(|v| self.eq_const(sel, &Ubig::from(v as u64)))
            .collect()
    }

    /// Shift-and-add constant multiplier (the paper's Fig. 2 note: "a
    /// shift-and-add multiplier with little delay"): `a · k`, output
    /// width `a.len() + k.bit_len()`.
    pub fn mul_const(&mut self, a: &[NetId], k: &Ubig) -> Bus {
        let out_width = a.len() + k.bit_len();
        if k.is_zero() || a.is_empty() {
            return vec![self.constant(false); out_width.max(1)];
        }
        let zero = self.constant(false);
        let mut acc: Option<Bus> = None;
        for bit in 0..k.bit_len() {
            if !k.bit(bit) {
                continue;
            }
            // a << bit
            let mut shifted = vec![zero; bit];
            shifted.extend_from_slice(a);
            acc = Some(match acc {
                None => shifted,
                Some(prev) => self.add_expand(&prev, &shifted),
            });
        }
        let mut out = acc.expect("k has at least one set bit");
        out.resize(out_width, zero);
        out
    }

    /// Population count: an adder tree summing the bits of `bus` into a
    /// `⌈log₂(len+1)⌉`-bit result (the digit extractor of the hardware
    /// rank converter).
    pub fn popcount(&mut self, bus: &[NetId]) -> Bus {
        if bus.is_empty() {
            return vec![self.constant(false)];
        }
        // Balanced tree of widening adders over 1-bit leaves.
        let mut layer: Vec<Bus> = bus.iter().map(|&b| vec![b]).collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut iter = layer.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => next.push(self.add_expand(&a, &b)),
                    None => next.push(a),
                }
            }
            layer = next;
        }
        layer.pop().unwrap()
    }

    /// OR-reduction of a bus.
    pub fn or_reduce(&mut self, bus: &[NetId]) -> NetId {
        let mut acc = self.constant(false);
        for &b in bus {
            acc = self.or(acc, b);
        }
        acc
    }

    /// AND-reduction of a bus.
    pub fn and_reduce(&mut self, bus: &[NetId]) -> NetId {
        let mut acc = self.constant(true);
        for &b in bus {
            acc = self.and(acc, b);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    /// Builds a 2-input combinational fixture, evaluates it on `(a, b)`,
    /// and returns the `out` port value.
    fn eval2(
        wa: usize,
        wb: usize,
        f: impl Fn(&mut Builder, &Bus, &Bus) -> Bus,
        a: u64,
        b: u64,
    ) -> u64 {
        let mut builder = Builder::new();
        let ba = builder.input_bus("a", wa);
        let bb = builder.input_bus("b", wb);
        let out = f(&mut builder, &ba, &bb);
        builder.output_bus("out", &out);
        let mut sim = Simulator::new(builder.finish());
        sim.set_input("a", &Ubig::from(a));
        sim.set_input("b", &Ubig::from(b));
        sim.eval();
        sim.read_output("out").to_u64().unwrap()
    }

    #[test]
    fn adder_exhaustive_6x6() {
        for a in 0..64u64 {
            for b in 0..64u64 {
                let got = eval2(6, 6, |bl, x, y| bl.add_expand(x, y), a, b);
                assert_eq!(got, a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn adder_mixed_widths() {
        let got = eval2(3, 8, |bl, x, y| bl.add_expand(x, y), 7, 200);
        assert_eq!(got, 207);
    }

    #[test]
    fn subtractor_exhaustive_5x5() {
        for a in 0..32u64 {
            for b in 0..32u64 {
                let mut builder = Builder::new();
                let ba = builder.input_bus("a", 5);
                let bb = builder.input_bus("b", 5);
                let (diff, ok) = builder.sub(&ba, &bb);
                builder.output_bus("diff", &diff);
                builder.output_bus("ok", &[ok]);
                let mut sim = Simulator::new(builder.finish());
                sim.set_input("a", &Ubig::from(a));
                sim.set_input("b", &Ubig::from(b));
                sim.eval();
                let ok_v = sim.read_output("ok").to_u64().unwrap();
                assert_eq!(ok_v == 1, a >= b, "{a} - {b} borrow");
                if a >= b {
                    assert_eq!(sim.read_output("diff").to_u64(), Some(a - b));
                }
            }
        }
    }

    #[test]
    fn ge_const_exhaustive() {
        for c in 0..16u64 {
            let mut builder = Builder::new();
            let ba = builder.input_bus("a", 4);
            let cmp = builder.ge_const(&ba, &Ubig::from(c));
            builder.output_bus("out", &[cmp]);
            let mut sim = Simulator::new(builder.finish());
            for a in 0..16u64 {
                sim.set_input("a", &Ubig::from(a));
                sim.eval();
                assert_eq!(
                    sim.read_output("out").to_u64().unwrap() == 1,
                    a >= c,
                    "a={a} c={c}"
                );
            }
        }
    }

    #[test]
    fn ge_const_wider_constant_is_false() {
        let got = eval2(
            3,
            1,
            |bl, x, _| {
                let g = bl.ge_const(x, &Ubig::from(9u64));
                vec![g]
            },
            7,
            0,
        );
        assert_eq!(got, 0);
    }

    #[test]
    fn ge_bus_exhaustive_4x4() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let got = eval2(4, 4, |bl, x, y| vec![bl.ge(x, y)], a, b);
                assert_eq!(got == 1, a >= b, "{a} >= {b}");
            }
        }
    }

    #[test]
    fn eq_const_and_decoder() {
        let mut builder = Builder::new();
        let sel = builder.input_bus("sel", 3);
        let onehot = builder.decoder(&sel, 6);
        builder.output_bus("oh", &onehot);
        let mut sim = Simulator::new(builder.finish());
        for v in 0..8u64 {
            sim.set_input("sel", &Ubig::from(v));
            sim.eval();
            let oh = sim.read_output("oh").to_u64().unwrap();
            if v < 6 {
                assert_eq!(oh, 1 << v, "one-hot for {v}");
            } else {
                assert_eq!(oh, 0, "out of range select {v}");
            }
        }
    }

    #[test]
    fn one_hot_mux_selects() {
        let mut builder = Builder::new();
        let sel = builder.input_bus("sel", 3); // one-hot lines directly
        let c0 = builder.constant_bus(4, &Ubig::from(5u64));
        let c1 = builder.constant_bus(4, &Ubig::from(9u64));
        let c2 = builder.constant_bus(4, &Ubig::from(14u64));
        let out = builder.one_hot_mux(&sel, &[&c0, &c1, &c2]);
        builder.output_bus("out", &out);
        let mut sim = Simulator::new(builder.finish());
        for (hot, expect) in [(0b001u64, 5u64), (0b010, 9), (0b100, 14), (0b000, 0)] {
            sim.set_input("sel", &Ubig::from(hot));
            sim.eval();
            assert_eq!(sim.read_output("out").to_u64(), Some(expect));
        }
    }

    #[test]
    fn binary_mux_non_power_of_two() {
        let mut builder = Builder::new();
        let sel = builder.input_bus("sel", 2);
        let choices: Vec<Bus> = (0..3u64)
            .map(|v| builder.constant_bus(4, &Ubig::from(v * 3 + 1)))
            .collect();
        let refs: Vec<&[NetId]> = choices.iter().map(|c| c.as_slice()).collect();
        let out = builder.binary_mux(&sel, &refs);
        builder.output_bus("out", &out);
        let mut sim = Simulator::new(builder.finish());
        for v in 0..3u64 {
            sim.set_input("sel", &Ubig::from(v));
            sim.eval();
            assert_eq!(sim.read_output("out").to_u64(), Some(v * 3 + 1));
        }
        // Out-of-range select reads zero.
        sim.set_input("sel", &Ubig::from(3u64));
        sim.eval();
        assert_eq!(sim.read_output("out").to_u64(), Some(0));
    }

    #[test]
    fn mul_const_matches_software() {
        for k in [0u64, 1, 2, 3, 5, 10, 24, 255] {
            let mut builder = Builder::new();
            let a = builder.input_bus("a", 8);
            let p = builder.mul_const(&a, &Ubig::from(k));
            builder.output_bus("out", &p);
            let mut sim = Simulator::new(builder.finish());
            for a_val in [0u64, 1, 7, 100, 255] {
                sim.set_input("a", &Ubig::from(a_val));
                sim.eval();
                assert_eq!(
                    sim.read_output("out").to_u64(),
                    Some(a_val * k),
                    "{a_val} * {k}"
                );
            }
        }
    }

    #[test]
    fn popcount_exhaustive_8_bits() {
        let mut builder = Builder::new();
        let a = builder.input_bus("a", 8);
        let pc = builder.popcount(&a);
        builder.output_bus("pc", &pc);
        let mut sim = Simulator::new(builder.finish());
        for v in 0..256u64 {
            sim.set_input("a", &Ubig::from(v));
            sim.eval();
            assert_eq!(
                sim.read_output("pc").to_u64(),
                Some(v.count_ones() as u64),
                "v = {v:#b}"
            );
        }
    }

    #[test]
    fn popcount_edge_widths() {
        for w in [1usize, 2, 3, 5, 7] {
            let mut builder = Builder::new();
            let a = builder.input_bus("a", w);
            let pc = builder.popcount(&a);
            builder.output_bus("pc", &pc);
            let mut sim = Simulator::new(builder.finish());
            let all = (1u64 << w) - 1;
            sim.set_input("a", &Ubig::from(all));
            sim.eval();
            assert_eq!(sim.read_output("pc").to_u64(), Some(w as u64));
        }
    }

    #[test]
    fn reductions() {
        let mut builder = Builder::new();
        let a = builder.input_bus("a", 4);
        let any = builder.or_reduce(&a);
        let all = builder.and_reduce(&a);
        builder.output_bus("any", &[any]);
        builder.output_bus("all", &[all]);
        let mut sim = Simulator::new(builder.finish());
        for v in 0..16u64 {
            sim.set_input("a", &Ubig::from(v));
            sim.eval();
            assert_eq!(sim.read_output("any").to_u64().unwrap() == 1, v != 0);
            assert_eq!(sim.read_output("all").to_u64().unwrap() == 1, v == 15);
        }
    }
}
