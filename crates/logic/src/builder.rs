//! Netlist construction: primitive gates with light peephole
//! simplification (constant folding), so generated circuits don't carry
//! dead logic into the resource reports.

use crate::netlist::{Gate, NetId, Netlist, Port};
use hwperm_bignum::Ubig;

/// A bus is a list of nets, least-significant bit first.
pub type Bus = Vec<NetId>;

/// Incrementally builds a [`Netlist`]. All combinational combinators
/// produce gates in topological order by construction.
#[derive(Debug)]
pub struct Builder {
    netlist: Netlist,
    zero: Option<NetId>,
    one: Option<NetId>,
    /// Structural-hash memo (common-subexpression elimination): a
    /// canonical gate shape → the net already computing it. `And`, `Or`
    /// and `Xor` are keyed with operands in sorted order so commuted
    /// requests share one gate; `Not` and `Mux` are keyed exactly.
    /// Besides saving area this keeps folding churn from stranding
    /// logic: an intermediate gate orphaned by a later fold (e.g.
    /// `xor(xor(a, 1), 1) = a`) is revived by the next request for the
    /// same computation instead of going dead. `Dff` is never memoized
    /// — two registers with the same input are still two state
    /// elements, and merging them would change register counts.
    memo: std::collections::HashMap<Gate, NetId>,
    /// When cleared ([`Builder::new_unoptimized`]), the peephole rules
    /// and the CSE memo are bypassed: every combinator call emits its
    /// gate verbatim. Constant nets stay deduplicated (two `Const`
    /// gates of one polarity carry no information).
    optimize: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    /// An empty builder.
    pub fn new() -> Self {
        Builder {
            netlist: Netlist::default(),
            zero: None,
            one: None,
            memo: std::collections::HashMap::new(),
            optimize: true,
        }
    }

    /// An empty builder with every peephole rule and the CSE memo
    /// disabled: the generated netlist is the literal transcription of
    /// the combinator calls. Exists so the formal layer can prove the
    /// optimizer sound — `prove_equivalent` miters an optimized build
    /// against this one.
    pub fn new_unoptimized() -> Self {
        Builder {
            optimize: false,
            ..Builder::new()
        }
    }

    fn push(&mut self, gate: Gate) -> NetId {
        let id = NetId(self.netlist.gates.len() as u32);
        self.netlist.gates.push(gate);
        id
    }

    /// Push through the CSE memo: an identical gate already built is
    /// reused instead of duplicated. The caller passes the canonical
    /// key (operands sorted for commutative gates).
    fn push_memo(&mut self, gate: Gate) -> NetId {
        if let Some(&id) = self.memo.get(&gate) {
            return id;
        }
        let id = self.push(gate);
        self.memo.insert(gate, id);
        id
    }

    /// Canonical commutative operand order: smaller net id first.
    fn sorted(x: NetId, y: NetId) -> (NetId, NetId) {
        if x <= y {
            (x, y)
        } else {
            (y, x)
        }
    }

    fn gate(&self, id: NetId) -> Gate {
        self.netlist.gates[id.index()]
    }

    /// Constant-value net of the given polarity (deduplicated).
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = if value { &mut self.one } else { &mut self.zero };
        if let Some(id) = *slot {
            return id;
        }
        let id = NetId(self.netlist.gates.len() as u32);
        self.netlist.gates.push(Gate::Const(value));
        if value {
            self.one = Some(id);
        } else {
            self.zero = Some(id);
        }
        id
    }

    pub(crate) fn const_value(&self, id: NetId) -> Option<bool> {
        match self.gate(id) {
            Gate::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Declares a `width`-bit primary input bus.
    ///
    /// # Panics
    /// Panics if the port name is already taken.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Bus {
        assert!(
            self.netlist.input_port(name).is_none(),
            "duplicate input port {name:?}"
        );
        let nets: Bus = (0..width).map(|_| self.push(Gate::Input)).collect();
        self.netlist.inputs.push(Port {
            name: name.to_string(),
            nets: nets.clone(),
        });
        nets
    }

    /// Declares a named output bus.
    ///
    /// # Panics
    /// Panics if the port name is already taken.
    pub fn output_bus(&mut self, name: &str, bus: &[NetId]) {
        assert!(
            self.netlist.output_port(name).is_none(),
            "duplicate output port {name:?}"
        );
        self.netlist.outputs.push(Port {
            name: name.to_string(),
            nets: bus.to_vec(),
        });
    }

    /// Inverter, with folding of constants and double negation.
    /// Inversions of the same net are deduplicated.
    pub fn not(&mut self, x: NetId) -> NetId {
        if !self.optimize {
            return self.push(Gate::Not(x));
        }
        match self.gate(x) {
            Gate::Const(v) => self.constant(!v),
            Gate::Not(inner) => inner,
            _ => self.push_memo(Gate::Not(x)),
        }
    }

    /// `true` iff one operand is the inversion of the other.
    fn complementary(&self, x: NetId, y: NetId) -> bool {
        self.gate(x) == Gate::Not(y) || self.gate(y) == Gate::Not(x)
    }

    /// 2-input AND with constant folding, idempotence, and
    /// contradiction (`x ∧ ¬x = 0`) elimination.
    pub fn and(&mut self, x: NetId, y: NetId) -> NetId {
        if !self.optimize {
            return self.push(Gate::And(x, y));
        }
        match (self.const_value(x), self.const_value(y)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => y,
            (_, Some(true)) => x,
            _ if x == y => x,
            _ if self.complementary(x, y) => self.constant(false),
            _ => {
                let (lo, hi) = Self::sorted(x, y);
                self.push_memo(Gate::And(lo, hi))
            }
        }
    }

    /// 2-input OR with constant folding, idempotence, and tautology
    /// (`x ∨ ¬x = 1`) elimination.
    pub fn or(&mut self, x: NetId, y: NetId) -> NetId {
        if !self.optimize {
            return self.push(Gate::Or(x, y));
        }
        match (self.const_value(x), self.const_value(y)) {
            (Some(true), _) | (_, Some(true)) => self.constant(true),
            (Some(false), _) => y,
            (_, Some(false)) => x,
            _ if x == y => x,
            _ if self.complementary(x, y) => self.constant(true),
            _ => {
                let (lo, hi) = Self::sorted(x, y);
                self.push_memo(Gate::Or(lo, hi))
            }
        }
    }

    /// 2-input XOR with constant folding and complement awareness
    /// (`x ⊕ ¬x = 1`).
    pub fn xor(&mut self, x: NetId, y: NetId) -> NetId {
        if !self.optimize {
            return self.push(Gate::Xor(x, y));
        }
        match (self.const_value(x), self.const_value(y)) {
            (Some(false), _) => y,
            (_, Some(false)) => x,
            (Some(true), _) => self.not(y),
            (_, Some(true)) => self.not(x),
            _ if x == y => self.constant(false),
            _ if self.complementary(x, y) => self.constant(true),
            _ => {
                let (lo, hi) = Self::sorted(x, y);
                self.push_memo(Gate::Xor(lo, hi))
            }
        }
    }

    /// 2:1 mux: `sel ? b : a`, with folding.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        if !self.optimize {
            return self.push(Gate::Mux { sel, a, b });
        }
        match self.const_value(sel) {
            Some(false) => return a,
            Some(true) => return b,
            None => {}
        }
        if a == b {
            return a;
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), Some(true)) => sel,
            (Some(true), Some(false)) => self.not(sel),
            (Some(false), None) => self.and(sel, b),
            (None, Some(true)) => self.or(sel, a),
            (Some(true), None) => {
                let ns = self.not(sel);
                self.or(ns, b)
            }
            (None, Some(false)) => {
                let ns = self.not(sel);
                self.and(ns, a)
            }
            _ => self.push_memo(Gate::Mux { sel, a, b }),
        }
    }

    /// D flip-flop with reset value `init`.
    pub fn dff(&mut self, d: NetId, init: bool) -> NetId {
        self.push(Gate::Dff { d, init })
    }

    /// A D flip-flop whose data input will be wired later with
    /// [`Builder::connect_dff`] — the pattern needed for feedback loops
    /// (LFSRs, counters), where next-state logic reads the register
    /// outputs. Until connected, the flop holds its own output.
    pub fn dff_deferred(&mut self, init: bool) -> NetId {
        let id = NetId(self.netlist.gates.len() as u32);
        self.netlist.gates.push(Gate::Dff { d: id, init });
        id
    }

    /// Wires the data input of a flop created by [`Builder::dff_deferred`].
    ///
    /// # Panics
    /// Panics if `q` is not a DFF.
    pub fn connect_dff(&mut self, q: NetId, d: NetId) {
        match &mut self.netlist.gates[q.index()] {
            Gate::Dff { d: slot, .. } => *slot = d,
            other => panic!("connect_dff on non-DFF gate {other:?}"),
        }
    }

    /// Registers every bit of a bus (one pipeline rank).
    pub fn register_bus(&mut self, bus: &[NetId], init: bool) -> Bus {
        bus.iter().map(|&b| self.dff(b, init)).collect()
    }

    /// A bus wired to a constant value (LSB first, `width` bits).
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn constant_bus(&mut self, width: usize, value: &Ubig) -> Bus {
        assert!(
            value.bit_len() <= width,
            "constant {value} does not fit in {width} bits"
        );
        (0..width).map(|i| self.constant(value.bit(i))).collect()
    }

    /// Marks a net as part of a dedicated carry chain (see
    /// [`Netlist::carry_nets`]). Constant-folded nets are skipped.
    pub fn mark_carry(&mut self, net: NetId) {
        if self.netlist.gates[net.index()].is_combinational() {
            self.netlist.carry_nets.push(net);
        }
    }

    /// Records a select bank the generator intends to be exactly one-hot
    /// (see [`Netlist::one_hot_banks`]). [`Self::one_hot_mux`] calls this
    /// automatically; generators with hand-rolled one-hot routing can
    /// call it directly. Duplicate banks (the converter
    /// feeds the same digit bank to two muxes per stage) collapse to one
    /// entry; single-line banks are trivially one-hot-or-zero and are
    /// not recorded.
    pub fn record_one_hot_bank(&mut self, onehot: &[NetId]) {
        if onehot.len() < 2 || self.netlist.onehot_banks.iter().any(|b| b == onehot) {
            return;
        }
        self.netlist.onehot_banks.push(onehot.to_vec());
    }

    /// Finalizes the netlist: sweeps unobservable gates, then (in debug
    /// builds) runs [`Netlist::validate`].
    ///
    /// The sweep is the dead-code-elimination step the peephole rules
    /// can't do alone — folding is eager, so a combinator sometimes
    /// creates an operand (an inverter for a borrow chain, say) whose
    /// every consumer later folds to a constant, stranding it. Gates
    /// kept: everything reaching an output port, all input-port bits,
    /// and the cones of recorded one-hot banks (assertion points the
    /// lint evaluates). Net ids are compacted in creation order, so the
    /// topological invariant is preserved; when nothing is dead the
    /// mapping is the identity.
    pub fn finish(mut self) -> Netlist {
        let keep = {
            let nl = &self.netlist;
            let mut keep = nl.live_mask();
            let mut stack: Vec<usize> = nl
                .inputs
                .iter()
                .flat_map(|p| p.nets.iter())
                .chain(nl.onehot_banks.iter().flatten())
                .map(|n| n.index())
                .collect();
            while let Some(i) = stack.pop() {
                if std::mem::replace(&mut keep[i], true) {
                    continue;
                }
                for f in nl.gates[i].fanin() {
                    stack.push(f.index());
                }
            }
            keep
        };
        if keep.iter().all(|&k| k) {
            debug_assert_eq!(self.netlist.validate(), Ok(()));
            return self.netlist;
        }
        let mut remap = vec![NetId(u32::MAX); self.netlist.gates.len()];
        let mut gates = Vec::with_capacity(keep.iter().filter(|&&k| k).count());
        for (i, &gate) in self.netlist.gates.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            remap[i] = NetId(gates.len() as u32);
            gates.push(gate);
        }
        let map = |n: NetId| remap[n.index()];
        for gate in &mut gates {
            *gate = match *gate {
                Gate::Const(v) => Gate::Const(v),
                Gate::Input => Gate::Input,
                Gate::Not(a) => Gate::Not(map(a)),
                Gate::And(a, b) => Gate::And(map(a), map(b)),
                Gate::Or(a, b) => Gate::Or(map(a), map(b)),
                Gate::Xor(a, b) => Gate::Xor(map(a), map(b)),
                Gate::Mux { sel, a, b } => Gate::Mux {
                    sel: map(sel),
                    a: map(a),
                    b: map(b),
                },
                Gate::Dff { d, init } => Gate::Dff { d: map(d), init },
            };
        }
        self.netlist.gates = gates;
        for port in self
            .netlist
            .inputs
            .iter_mut()
            .chain(&mut self.netlist.outputs)
        {
            for net in &mut port.nets {
                *net = map(*net);
            }
        }
        for bank in &mut self.netlist.onehot_banks {
            for net in bank.iter_mut() {
                *net = map(*net);
            }
        }
        self.netlist.carry_nets.retain(|n| keep[n.index()]);
        for net in &mut self.netlist.carry_nets {
            *net = map(*net);
        }
        debug_assert_eq!(self.netlist.validate(), Ok(()));
        self.netlist
    }

    /// Number of gates created so far (for structural assertions in tests).
    pub fn gate_count(&self) -> usize {
        self.netlist.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_deduplicated() {
        let mut b = Builder::new();
        let z1 = b.constant(false);
        let z2 = b.constant(false);
        let o = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o);
        assert_eq!(b.gate_count(), 2);
    }

    #[test]
    fn double_negation_folds() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let n1 = b.not(x);
        let n2 = b.not(n1);
        assert_eq!(n2, x);
    }

    #[test]
    fn and_or_folding() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let zero = b.constant(false);
        let one = b.constant(true);
        assert_eq!(b.and(x, zero), zero);
        assert_eq!(b.and(x, one), x);
        assert_eq!(b.or(x, one), one);
        assert_eq!(b.or(x, zero), x);
        assert_eq!(b.and(x, x), x);
        assert_eq!(b.or(x, x), x);
    }

    #[test]
    fn xor_folding() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let zero = b.constant(false);
        let one = b.constant(true);
        assert_eq!(b.xor(x, zero), x);
        assert_eq!(b.xor(x, x), zero);
        let nx = b.xor(x, one);
        assert_eq!(b.gate(nx), Gate::Not(x));
        let _ = nx;
    }

    #[test]
    fn complementary_operand_folding() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let nx = b.not(x);
        let zero = b.constant(false);
        let one = b.constant(true);
        assert_eq!(b.and(x, nx), zero);
        assert_eq!(b.and(nx, x), zero);
        assert_eq!(b.or(x, nx), one);
        assert_eq!(b.xor(nx, x), one);
    }

    #[test]
    fn mux_folding() {
        let mut b = Builder::new();
        let s = b.input_bus("s", 1)[0];
        let x = b.input_bus("x", 1)[0];
        let zero = b.constant(false);
        let one = b.constant(true);
        // sel ? 1 : 0  ==  sel
        assert_eq!(b.mux(s, zero, one), s);
        // same-value arms
        assert_eq!(b.mux(s, x, x), x);
        // sel ? x : 0  ==  sel & x
        let m = b.mux(s, zero, x);
        assert_eq!(b.gate(m), Gate::And(s, x));
    }

    #[test]
    fn constant_bus_bits() {
        let mut b = Builder::new();
        let bus = b.constant_bus(4, &Ubig::from(0b1010u64));
        let vals: Vec<bool> = bus.iter().map(|&n| b.const_value(n).unwrap()).collect();
        assert_eq!(vals, vec![false, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn constant_bus_checks_width() {
        let mut b = Builder::new();
        b.constant_bus(2, &Ubig::from(7u64));
    }

    #[test]
    #[should_panic(expected = "duplicate input port")]
    fn duplicate_ports_rejected() {
        let mut b = Builder::new();
        b.input_bus("x", 1);
        b.input_bus("x", 2);
    }

    #[test]
    fn unoptimized_builder_emits_gates_verbatim() {
        let mut b = Builder::new_unoptimized();
        let x = b.input_bus("x", 1)[0];
        let one = b.constant(true);
        // Every fold the optimizing builder would take is refused.
        let n1 = b.not(x);
        let n2 = b.not(n1);
        assert_ne!(n2, x, "double negation kept");
        assert_eq!(b.gate(n2), Gate::Not(n1));
        let a = b.and(x, one);
        assert_eq!(b.gate(a), Gate::And(x, one), "constant AND kept");
        let a2 = b.and(one, x);
        assert_ne!(a, a2, "no CSE, no operand sorting");
        let m = b.mux(one, x, n1);
        assert_eq!(
            b.gate(m),
            Gate::Mux {
                sel: one,
                a: x,
                b: n1
            }
        );
        // Still a valid netlist after DCE.
        b.output_bus("y", &[n2, a, a2, m]);
        let nl = b.finish();
        assert_eq!(nl.validate(), Ok(()));
    }
}
