//! Netlist construction: primitive gates with light peephole
//! simplification (constant folding), so generated circuits don't carry
//! dead logic into the resource reports.

use crate::netlist::{Gate, NetId, Netlist, Port};
use hwperm_bignum::Ubig;

/// A bus is a list of nets, least-significant bit first.
pub type Bus = Vec<NetId>;

/// Incrementally builds a [`Netlist`]. All combinational combinators
/// produce gates in topological order by construction.
#[derive(Debug, Default)]
pub struct Builder {
    netlist: Netlist,
    zero: Option<NetId>,
    one: Option<NetId>,
}

impl Builder {
    /// An empty builder.
    pub fn new() -> Self {
        Builder::default()
    }

    fn push(&mut self, gate: Gate) -> NetId {
        let id = NetId(self.netlist.gates.len() as u32);
        self.netlist.gates.push(gate);
        id
    }

    fn gate(&self, id: NetId) -> Gate {
        self.netlist.gates[id.index()]
    }

    /// Constant-value net of the given polarity (deduplicated).
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = if value { &mut self.one } else { &mut self.zero };
        if let Some(id) = *slot {
            return id;
        }
        let id = NetId(self.netlist.gates.len() as u32);
        self.netlist.gates.push(Gate::Const(value));
        if value {
            self.one = Some(id);
        } else {
            self.zero = Some(id);
        }
        id
    }

    pub(crate) fn const_value(&self, id: NetId) -> Option<bool> {
        match self.gate(id) {
            Gate::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Declares a `width`-bit primary input bus.
    ///
    /// # Panics
    /// Panics if the port name is already taken.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Bus {
        assert!(
            self.netlist.input_port(name).is_none(),
            "duplicate input port {name:?}"
        );
        let nets: Bus = (0..width).map(|_| self.push(Gate::Input)).collect();
        self.netlist.inputs.push(Port {
            name: name.to_string(),
            nets: nets.clone(),
        });
        nets
    }

    /// Declares a named output bus.
    ///
    /// # Panics
    /// Panics if the port name is already taken.
    pub fn output_bus(&mut self, name: &str, bus: &[NetId]) {
        assert!(
            self.netlist.output_port(name).is_none(),
            "duplicate output port {name:?}"
        );
        self.netlist.outputs.push(Port {
            name: name.to_string(),
            nets: bus.to_vec(),
        });
    }

    /// Inverter, with folding of constants and double negation.
    pub fn not(&mut self, x: NetId) -> NetId {
        match self.gate(x) {
            Gate::Const(v) => self.constant(!v),
            Gate::Not(inner) => inner,
            _ => self.push(Gate::Not(x)),
        }
    }

    /// `true` iff one operand is the inversion of the other.
    fn complementary(&self, x: NetId, y: NetId) -> bool {
        self.gate(x) == Gate::Not(y) || self.gate(y) == Gate::Not(x)
    }

    /// 2-input AND with constant folding, idempotence, and
    /// contradiction (`x ∧ ¬x = 0`) elimination.
    pub fn and(&mut self, x: NetId, y: NetId) -> NetId {
        match (self.const_value(x), self.const_value(y)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => y,
            (_, Some(true)) => x,
            _ if x == y => x,
            _ if self.complementary(x, y) => self.constant(false),
            _ => self.push(Gate::And(x, y)),
        }
    }

    /// 2-input OR with constant folding, idempotence, and tautology
    /// (`x ∨ ¬x = 1`) elimination.
    pub fn or(&mut self, x: NetId, y: NetId) -> NetId {
        match (self.const_value(x), self.const_value(y)) {
            (Some(true), _) | (_, Some(true)) => self.constant(true),
            (Some(false), _) => y,
            (_, Some(false)) => x,
            _ if x == y => x,
            _ if self.complementary(x, y) => self.constant(true),
            _ => self.push(Gate::Or(x, y)),
        }
    }

    /// 2-input XOR with constant folding and complement awareness
    /// (`x ⊕ ¬x = 1`).
    pub fn xor(&mut self, x: NetId, y: NetId) -> NetId {
        match (self.const_value(x), self.const_value(y)) {
            (Some(false), _) => y,
            (_, Some(false)) => x,
            (Some(true), _) => self.not(y),
            (_, Some(true)) => self.not(x),
            _ if x == y => self.constant(false),
            _ if self.complementary(x, y) => self.constant(true),
            _ => self.push(Gate::Xor(x, y)),
        }
    }

    /// 2:1 mux: `sel ? b : a`, with folding.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        match self.const_value(sel) {
            Some(false) => return a,
            Some(true) => return b,
            None => {}
        }
        if a == b {
            return a;
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), Some(true)) => sel,
            (Some(true), Some(false)) => self.not(sel),
            (Some(false), None) => self.and(sel, b),
            (None, Some(true)) => self.or(sel, a),
            (Some(true), None) => {
                let ns = self.not(sel);
                self.or(ns, b)
            }
            (None, Some(false)) => {
                let ns = self.not(sel);
                self.and(ns, a)
            }
            _ => self.push(Gate::Mux { sel, a, b }),
        }
    }

    /// D flip-flop with reset value `init`.
    pub fn dff(&mut self, d: NetId, init: bool) -> NetId {
        self.push(Gate::Dff { d, init })
    }

    /// A D flip-flop whose data input will be wired later with
    /// [`Builder::connect_dff`] — the pattern needed for feedback loops
    /// (LFSRs, counters), where next-state logic reads the register
    /// outputs. Until connected, the flop holds its own output.
    pub fn dff_deferred(&mut self, init: bool) -> NetId {
        let id = NetId(self.netlist.gates.len() as u32);
        self.netlist.gates.push(Gate::Dff { d: id, init });
        id
    }

    /// Wires the data input of a flop created by [`Builder::dff_deferred`].
    ///
    /// # Panics
    /// Panics if `q` is not a DFF.
    pub fn connect_dff(&mut self, q: NetId, d: NetId) {
        match &mut self.netlist.gates[q.index()] {
            Gate::Dff { d: slot, .. } => *slot = d,
            other => panic!("connect_dff on non-DFF gate {other:?}"),
        }
    }

    /// Registers every bit of a bus (one pipeline rank).
    pub fn register_bus(&mut self, bus: &[NetId], init: bool) -> Bus {
        bus.iter().map(|&b| self.dff(b, init)).collect()
    }

    /// A bus wired to a constant value (LSB first, `width` bits).
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn constant_bus(&mut self, width: usize, value: &Ubig) -> Bus {
        assert!(
            value.bit_len() <= width,
            "constant {value} does not fit in {width} bits"
        );
        (0..width).map(|i| self.constant(value.bit(i))).collect()
    }

    /// Marks a net as part of a dedicated carry chain (see
    /// [`Netlist::carry_nets`]). Constant-folded nets are skipped.
    pub fn mark_carry(&mut self, net: NetId) {
        if self.netlist.gates[net.index()].is_combinational() {
            self.netlist.carry_nets.push(net);
        }
    }

    /// Finalizes the netlist.
    ///
    /// Debug builds run [`Netlist::validate`].
    pub fn finish(self) -> Netlist {
        debug_assert_eq!(self.netlist.validate(), Ok(()));
        self.netlist
    }

    /// Number of gates created so far (for structural assertions in tests).
    pub fn gate_count(&self) -> usize {
        self.netlist.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_deduplicated() {
        let mut b = Builder::new();
        let z1 = b.constant(false);
        let z2 = b.constant(false);
        let o = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o);
        assert_eq!(b.gate_count(), 2);
    }

    #[test]
    fn double_negation_folds() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let n1 = b.not(x);
        let n2 = b.not(n1);
        assert_eq!(n2, x);
    }

    #[test]
    fn and_or_folding() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let zero = b.constant(false);
        let one = b.constant(true);
        assert_eq!(b.and(x, zero), zero);
        assert_eq!(b.and(x, one), x);
        assert_eq!(b.or(x, one), one);
        assert_eq!(b.or(x, zero), x);
        assert_eq!(b.and(x, x), x);
        assert_eq!(b.or(x, x), x);
    }

    #[test]
    fn xor_folding() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let zero = b.constant(false);
        let one = b.constant(true);
        assert_eq!(b.xor(x, zero), x);
        assert_eq!(b.xor(x, x), zero);
        let nx = b.xor(x, one);
        assert_eq!(b.gate(nx), Gate::Not(x));
        let _ = nx;
    }

    #[test]
    fn complementary_operand_folding() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 1)[0];
        let nx = b.not(x);
        let zero = b.constant(false);
        let one = b.constant(true);
        assert_eq!(b.and(x, nx), zero);
        assert_eq!(b.and(nx, x), zero);
        assert_eq!(b.or(x, nx), one);
        assert_eq!(b.xor(nx, x), one);
    }

    #[test]
    fn mux_folding() {
        let mut b = Builder::new();
        let s = b.input_bus("s", 1)[0];
        let x = b.input_bus("x", 1)[0];
        let zero = b.constant(false);
        let one = b.constant(true);
        // sel ? 1 : 0  ==  sel
        assert_eq!(b.mux(s, zero, one), s);
        // same-value arms
        assert_eq!(b.mux(s, x, x), x);
        // sel ? x : 0  ==  sel & x
        let m = b.mux(s, zero, x);
        assert_eq!(b.gate(m), Gate::And(s, x));
    }

    #[test]
    fn constant_bus_bits() {
        let mut b = Builder::new();
        let bus = b.constant_bus(4, &Ubig::from(0b1010u64));
        let vals: Vec<bool> = bus.iter().map(|&n| b.const_value(n).unwrap()).collect();
        assert_eq!(vals, vec![false, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn constant_bus_checks_width() {
        let mut b = Builder::new();
        b.constant_bus(2, &Ubig::from(7u64));
    }

    #[test]
    #[should_panic(expected = "duplicate input port")]
    fn duplicate_ports_rejected() {
        let mut b = Builder::new();
        b.input_bus("x", 1);
        b.input_bus("x", 2);
    }
}
