//! Property tests: generated arithmetic netlists must agree with host
//! integer arithmetic on random operands and widths.

use hwperm_bignum::Ubig;
use hwperm_logic::{Builder, Simulator};
use proptest::prelude::*;

proptest! {
    #[test]
    fn adder_matches_host(w in 1usize..=32, a in any::<u64>(), b in any::<u64>()) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let (a, b) = (a & mask, b & mask);
        let mut builder = Builder::new();
        let ba = builder.input_bus("a", w);
        let bb = builder.input_bus("b", w);
        let sum = builder.add_expand(&ba, &bb);
        builder.output_bus("s", &sum);
        let mut sim = Simulator::new(builder.finish());
        sim.set_input_u64("a", a);
        sim.set_input_u64("b", b);
        sim.eval();
        prop_assert_eq!(sim.read_output("s").to_u64(), Some(a + b));
    }

    #[test]
    fn subtractor_matches_host(w in 1usize..=32, a in any::<u64>(), b in any::<u64>()) {
        let mask = (1u64 << w) - 1;
        let (a, b) = (a & mask, b & mask);
        let mut builder = Builder::new();
        let ba = builder.input_bus("a", w);
        let bb = builder.input_bus("b", w);
        let (diff, ok) = builder.sub(&ba, &bb);
        builder.output_bus("d", &diff);
        builder.output_bus("ok", &[ok]);
        let mut sim = Simulator::new(builder.finish());
        sim.set_input_u64("a", a);
        sim.set_input_u64("b", b);
        sim.eval();
        prop_assert_eq!(sim.read_output("ok").to_u64().unwrap() == 1, a >= b);
        if a >= b {
            prop_assert_eq!(sim.read_output("d").to_u64(), Some(a - b));
        }
    }

    #[test]
    fn comparators_match_host(w in 1usize..=24, a in any::<u64>(), c in any::<u64>()) {
        let mask = (1u64 << w) - 1;
        let (a, c) = (a & mask, c & mask);
        let mut builder = Builder::new();
        let ba = builder.input_bus("a", w);
        let ge_c = builder.ge_const(&ba, &Ubig::from(c));
        let eq_c = builder.eq_const(&ba, &Ubig::from(c));
        builder.output_bus("ge", &[ge_c]);
        builder.output_bus("eq", &[eq_c]);
        let mut sim = Simulator::new(builder.finish());
        sim.set_input_u64("a", a);
        sim.eval();
        prop_assert_eq!(sim.read_output("ge").to_u64().unwrap() == 1, a >= c);
        prop_assert_eq!(sim.read_output("eq").to_u64().unwrap() == 1, a == c);
    }

    #[test]
    fn mul_const_matches_host(w in 1usize..=16, a in any::<u64>(), k in 0u64..=1000) {
        let mask = (1u64 << w) - 1;
        let a = a & mask;
        let mut builder = Builder::new();
        let ba = builder.input_bus("a", w);
        let p = builder.mul_const(&ba, &Ubig::from(k));
        builder.output_bus("p", &p);
        let mut sim = Simulator::new(builder.finish());
        sim.set_input_u64("a", a);
        sim.eval();
        prop_assert_eq!(sim.read_output("p").to_u64(), Some(a * k));
    }

    #[test]
    fn binary_mux_selects_correctly(
        w in 1usize..=8,
        count in 1usize..=9,
        sel in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mask = (1u64 << w) - 1;
        let choices: Vec<u64> = (0..count as u64)
            .map(|i| seed.rotate_left(i as u32 * 7) & mask)
            .collect();
        let sel_width = (usize::BITS - (count - 1).leading_zeros()).max(1) as usize;
        let sel = sel % count as u64;

        let mut builder = Builder::new();
        let bsel = builder.input_bus("sel", sel_width);
        let buses: Vec<Vec<_>> = choices
            .iter()
            .map(|&c| builder.constant_bus(w, &Ubig::from(c)))
            .collect();
        let refs: Vec<&[hwperm_logic::NetId]> = buses.iter().map(|b| b.as_slice()).collect();
        let out = builder.binary_mux(&bsel, &refs);
        builder.output_bus("out", &out);
        let mut sim = Simulator::new(builder.finish());
        sim.set_input_u64("sel", sel);
        sim.eval();
        prop_assert_eq!(sim.read_output("out").to_u64(), Some(choices[sel as usize]));
    }

    #[test]
    fn wide_ubig_adder(limbs_a in prop::collection::vec(any::<u64>(), 1..3),
                       limbs_b in prop::collection::vec(any::<u64>(), 1..3)) {
        // Exercise >64-bit datapaths, as needed for big-n index buses.
        let a = Ubig::from_limbs(limbs_a);
        let b = Ubig::from_limbs(limbs_b);
        let w = a.bit_len().max(b.bit_len()).max(1);
        let mut builder = Builder::new();
        let ba = builder.input_bus("a", w);
        let bb = builder.input_bus("b", w);
        let sum = builder.add_expand(&ba, &bb);
        builder.output_bus("s", &sum);
        let mut sim = Simulator::new(builder.finish());
        sim.set_input("a", &a);
        sim.set_input("b", &b);
        sim.eval();
        prop_assert_eq!(sim.read_output("s"), &a + &b);
    }
}
