//! Linear feedback shift registers: software step and netlist construction.

use crate::taps::max_len_taps;
use hwperm_logic::{Builder, Bus};

/// A Fibonacci LFSR of width `m ≤ 64` with maximal-length taps.
///
/// State transition per clock: `fb = XOR of tapped bits;
/// state = ((state << 1) | fb) & mask`. With a nonzero seed, the state
/// visits all `2^m − 1` nonzero values before repeating — the paper's
/// "the LFSR random number generator generates all 31 5-bit numbers
/// except 0" for `m = 5`.
#[derive(Debug, Clone)]
pub struct Lfsr {
    state: u64,
    mask: u64,
    m: usize,
    tap_mask: u64,
}

impl Lfsr {
    /// Creates an `m`-bit LFSR seeded with `seed` (reduced to `m` bits;
    /// a zero seed is mapped to 1, since zero is the lock-up state).
    ///
    /// # Panics
    /// Panics if `m` is outside `2..=64`.
    pub fn new(m: usize, seed: u64) -> Self {
        let taps = max_len_taps(m);
        let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        let mut tap_mask = 0u64;
        for &t in taps {
            tap_mask |= 1u64 << (t - 1);
        }
        let state = match seed & mask {
            0 => 1,
            s => s,
        };
        Lfsr {
            state,
            mask,
            m,
            tap_mask,
        }
    }

    /// Register width `m`.
    pub fn width(&self) -> usize {
        self.m
    }

    /// Current state (the paper's random number `x`, `1 ≤ x < 2^m`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one clock and returns the *new* state.
    pub fn step(&mut self) -> u64 {
        let fb = ((self.state & self.tap_mask).count_ones() & 1) as u64;
        self.state = ((self.state << 1) | fb) & self.mask;
        debug_assert_ne!(self.state, 0, "LFSR entered the lock-up state");
        self.state
    }

    /// The sequence period: `2^m − 1` for a maximal-length LFSR.
    pub fn period(&self) -> u64 {
        self.mask
    }
}

/// A Galois-form LFSR over the *reciprocal* characteristic polynomial —
/// produces a maximal-length sequence with cheaper software steps; used
/// to cross-check that maximality is a property of the polynomial, not
/// the implementation.
#[derive(Debug, Clone)]
pub struct GaloisLfsr {
    state: u64,
    poly: u64,
    mask: u64,
}

impl GaloisLfsr {
    /// Creates an `m`-bit Galois LFSR from the same tap table.
    pub fn new(m: usize, seed: u64) -> Self {
        let taps = max_len_taps(m);
        let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        // Galois form shifting right: on output of bit 0, XOR the taps in.
        let mut poly = 0u64;
        for &t in taps {
            poly |= 1u64 << (m - t as usize);
        }
        // Bit m-1 (the fed-back bit) corresponds to tap m, always present
        // at position 0 of poly; shift pattern places it at the MSB.
        poly = (poly >> 1) | (1u64 << (m - 1));
        let state = match seed & mask {
            0 => 1,
            s => s,
        };
        GaloisLfsr { state, poly, mask }
    }

    /// Advances one clock and returns the new state.
    pub fn step(&mut self) -> u64 {
        let out = self.state & 1;
        self.state >>= 1;
        if out == 1 {
            self.state ^= self.poly;
        }
        self.state &= self.mask;
        self.state
    }

    /// Current state.
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// Builds the same Fibonacci LFSR as hardware: `m` DFFs in a shift ring
/// with an XOR-tree feedback into bit 0. Returns the state bus
/// (LSB-first). Each [`hwperm_logic::Simulator::step`] advances the
/// register exactly like [`Lfsr::step`].
pub fn build_lfsr(b: &mut Builder, m: usize, seed: u64) -> Bus {
    let taps = max_len_taps(m);
    let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let seed = match seed & mask {
        0 => 1,
        s => s,
    };
    // Registers with per-bit reset values from the seed.
    let q: Bus = (0..m)
        .map(|i| b.dff_deferred((seed >> i) & 1 == 1))
        .collect();
    // Feedback: XOR of tapped bits.
    let mut fb = None;
    for &t in taps {
        let bit = q[t as usize - 1];
        fb = Some(match fb {
            None => bit,
            Some(acc) => b.xor(acc, bit),
        });
    }
    let fb = fb.expect("taps nonempty");
    // Shift: bit 0 <- fb, bit i <- bit i-1.
    b.connect_dff(q[0], fb);
    for i in 1..m {
        b.connect_dff(q[i], q[i - 1]);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Simulator;

    #[test]
    fn full_period_small_widths() {
        for m in 2..=16usize {
            let mut lfsr = Lfsr::new(m, 1);
            let period = lfsr.period();
            let start = lfsr.state();
            let mut count = 0u64;
            loop {
                lfsr.step();
                count += 1;
                if lfsr.state() == start {
                    break;
                }
                assert!(count <= period, "width {m} cycle longer than 2^m - 1");
            }
            assert_eq!(count, period, "width {m} not maximal");
        }
    }

    #[test]
    fn full_period_width_20() {
        let mut lfsr = Lfsr::new(20, 0xBEEF);
        let start = lfsr.state();
        let mut count = 0u64;
        loop {
            lfsr.step();
            count += 1;
            if lfsr.state() == start {
                break;
            }
        }
        assert_eq!(count, (1 << 20) - 1);
    }

    #[test]
    fn galois_full_period_small_widths() {
        for m in 2..=14usize {
            let mut lfsr = GaloisLfsr::new(m, 1);
            let start = lfsr.state();
            let mut count = 0u64;
            let period = if m == 64 { u64::MAX } else { (1 << m) - 1 };
            loop {
                lfsr.step();
                count += 1;
                if lfsr.state() == start {
                    break;
                }
                assert!(count <= period, "width {m} cycle too long");
            }
            assert_eq!(count, period, "Galois width {m} not maximal");
        }
    }

    #[test]
    fn zero_seed_is_coerced() {
        let lfsr = Lfsr::new(8, 0);
        assert_ne!(lfsr.state(), 0);
        let lfsr = Lfsr::new(8, 256); // == 0 mod 2^8
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn never_hits_zero() {
        let mut lfsr = Lfsr::new(5, 7);
        for _ in 0..100 {
            assert_ne!(lfsr.step(), 0);
        }
    }

    #[test]
    fn m5_visits_all_31_values() {
        // The paper's example: all 31 5-bit numbers except 0.
        let mut lfsr = Lfsr::new(5, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..31 {
            seen.insert(lfsr.step());
        }
        assert_eq!(seen.len(), 31);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn circuit_matches_software_bit_for_bit() {
        for m in [3usize, 5, 8, 16, 31] {
            let seed = 0x1234_5678_9abc_def0u64;
            let mut b = Builder::new();
            let q = build_lfsr(&mut b, m, seed);
            b.output_bus("x", &q);
            let mut sim = Simulator::new(b.finish());
            let mut sw = Lfsr::new(m, seed);
            // Reset state equals the seed.
            sim.eval();
            assert_eq!(
                sim.read_output("x").to_u64(),
                Some(sw.state()),
                "m={m} reset"
            );
            for cycle in 0..200 {
                sim.step();
                sim.eval();
                let hw = sim.read_output("x").to_u64().unwrap();
                let expected = sw.step();
                assert_eq!(hw, expected, "m = {m}, cycle = {cycle}");
            }
        }
    }

    #[test]
    fn circuit_resource_shape() {
        // An m-bit LFSR costs m registers and O(taps) LUTs.
        let mut b = Builder::new();
        let q = build_lfsr(&mut b, 32, 1);
        b.output_bus("x", &q);
        let report = hwperm_logic::ResourceReport::of(&b.finish());
        assert_eq!(report.registers, 32);
        assert!(report.total_luts <= 4, "{report}");
    }
}
