//! The paper's Fig. 2 random-integer block and its bias analysis.
//!
//! A random `m`-bit number `x` is viewed as a fraction `x / 2^m < 1`;
//! multiplying by `k` and truncating ("Right_Shift & Truncate") yields an
//! integer `i = ⌊k·x / 2^m⌋ ∈ [0, k)`. Because an LFSR emits the
//! `2^m − 1` nonzero values exactly once per period, the pigeonhole
//! principle makes some outputs of `i` more likely than others; the paper
//! works the `m = 5, k = 24` example (7 integers at double probability)
//! and notes that larger `m` shrinks the imbalance. [`BiasReport`]
//! computes those counts exactly.

use crate::lfsr::Lfsr;
use hwperm_bignum::Ubig;
use hwperm_logic::{Builder, Bus};
use hwperm_perm::shuffle::RandomBelow;

/// Software model of the Fig. 2 block: `⌊k·x / 2^m⌋`.
///
/// # Panics
/// Panics if `x >= 2^m` or if `k·x` would overflow `u128` (it cannot for
/// `m ≤ 64`, `k ≤ u64::MAX`).
pub fn random_integer(m: usize, x: u64, k: u64) -> u64 {
    if m < 64 {
        assert!(x < (1u64 << m), "x must be an m-bit value");
    }
    ((x as u128 * k as u128) >> m) as u64
}

/// Builds the Fig. 2 datapath on a netlist: input bus `x` (`m` bits),
/// output `⌊k·x/2^m⌋` (`⌈log₂ k⌉` bits). The multiplier is the shift-and-
/// add constant multiplier; the shift-and-truncate is free (wire
/// selection).
pub fn build_random_integer(b: &mut Builder, x: &[NetId], k: u64) -> Bus {
    assert!(k >= 1, "k must be at least 1");
    let m = x.len();
    let product = b.mul_const(x, &Ubig::from(k));
    // Keep bits [m, m + ceil(log2 k)) — the integer part of k·x/2^m.
    let out_width = (64 - (k - 1).leading_zeros()).max(1) as usize;
    let zero = b.constant(false);
    (0..out_width)
        .map(|i| product.get(m + i).copied().unwrap_or(zero))
        .collect()
}

use hwperm_logic::NetId;

/// A [`RandomBelow`] source driven by a software LFSR through the Fig. 2
/// block — *hardware-faithful*, including its pigeonhole bias. This is
/// what the paper's Knuth-shuffle circuit uses per stage (a "31-bit
/// random integer generator similar to that shown in Fig. 2").
#[derive(Debug, Clone)]
pub struct LfsrRandomBelow {
    lfsr: Lfsr,
}

impl LfsrRandomBelow {
    /// An `m`-bit LFSR-backed integer source.
    pub fn new(m: usize, seed: u64) -> Self {
        LfsrRandomBelow {
            lfsr: Lfsr::new(m, seed),
        }
    }
}

impl RandomBelow for LfsrRandomBelow {
    fn next_below(&mut self, k: u64) -> u64 {
        let x = self.lfsr.step();
        random_integer(self.lfsr.width(), x, k)
    }
}

/// Exact distribution of the Fig. 2 block's output over one full LFSR
/// period (all `x ∈ [1, 2^m)` exactly once).
#[derive(Debug, Clone, PartialEq)]
pub struct BiasReport {
    /// LFSR width.
    pub m: usize,
    /// Output range.
    pub k: u64,
    /// `counts[i]` = number of `x` values mapping to output `i`.
    pub counts: Vec<u64>,
    /// Smallest per-output count.
    pub min_count: u64,
    /// Largest per-output count.
    pub max_count: u64,
}

impl BiasReport {
    /// Computes the exact per-output counts analytically:
    /// `⌊k·x/2^m⌋ = i ⟺ x ∈ [⌈i·2^m/k⌉, ⌈(i+1)·2^m/k⌉)`, minus the
    /// excluded `x = 0`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 2^m − 1` (outputs would be impossible) or
    /// `m > 63`.
    pub fn analytic(m: usize, k: u64) -> BiasReport {
        assert!(m <= 63, "analytic bias limited to m <= 63");
        assert!(k >= 1);
        let pow = 1u128 << m;
        assert!(
            (k as u128) < pow,
            "k = {k} exceeds the number of nonzero LFSR states"
        );
        let mut counts = Vec::with_capacity(k as usize);
        for i in 0..k as u128 {
            let lo = (i * pow).div_ceil(k as u128);
            let hi = ((i + 1) * pow).div_ceil(k as u128);
            let mut c = (hi - lo) as u64;
            if lo == 0 {
                c -= 1; // the LFSR never emits x = 0
            }
            counts.push(c);
        }
        Self::from_counts(m, k, counts)
    }

    /// Measures the distribution empirically by stepping an actual LFSR
    /// through its entire period (practical for `m ≲ 24`).
    pub fn empirical(m: usize, k: u64) -> BiasReport {
        let mut lfsr = Lfsr::new(m, 1);
        let mut counts = vec![0u64; k as usize];
        for _ in 0..lfsr.period() {
            let x = lfsr.step();
            counts[random_integer(m, x, k) as usize] += 1;
        }
        Self::from_counts(m, k, counts)
    }

    fn from_counts(m: usize, k: u64, counts: Vec<u64>) -> BiasReport {
        let min_count = counts.iter().copied().min().unwrap_or(0);
        let max_count = counts.iter().copied().max().unwrap_or(0);
        BiasReport {
            m,
            k,
            counts,
            min_count,
            max_count,
        }
    }

    /// Ratio of the most likely to the least likely output (the paper's
    /// "generated with a probability that is twice that of" for m = 5).
    pub fn probability_ratio(&self) -> f64 {
        self.max_count as f64 / self.min_count as f64
    }

    /// Relative probability difference between extreme outputs, in
    /// percent ("for m = 31, the difference reduces to ~10⁻⁵ %").
    pub fn difference_percent(&self) -> f64 {
        100.0 * (self.max_count - self.min_count) as f64 / self.min_count as f64
    }

    /// Number of outputs receiving the maximal count.
    pub fn outputs_at_max(&self) -> usize {
        self.counts.iter().filter(|&&c| c == self.max_count).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Simulator;

    #[test]
    fn random_integer_range() {
        for m in [4usize, 5, 8] {
            for k in [1u64, 2, 5, 24] {
                for x in 0..(1u64 << m) {
                    let i = random_integer(m, x, k);
                    assert!(i < k, "m={m} k={k} x={x} -> {i}");
                }
            }
        }
    }

    #[test]
    fn paper_example_m5_k24() {
        // "seven of the random integers are generated from two random
        // numbers, while 17 are generated from one. As a result, seven
        // random integers are generated with a probability that is twice
        // that of 17 other integers."
        let r = BiasReport::analytic(5, 24);
        assert_eq!(r.counts.iter().sum::<u64>(), 31);
        assert_eq!(r.outputs_at_max(), 7);
        assert_eq!(r.counts.iter().filter(|&&c| c == 1).count(), 17);
        assert_eq!(r.probability_ratio(), 2.0);
    }

    #[test]
    fn analytic_matches_empirical() {
        for (m, k) in [(5usize, 24u64), (8, 24), (10, 7), (12, 100)] {
            let a = BiasReport::analytic(m, k);
            let e = BiasReport::empirical(m, k);
            assert_eq!(a.counts, e.counts, "m={m} k={k}");
        }
    }

    #[test]
    fn bias_shrinks_with_m() {
        let d5 = BiasReport::analytic(5, 24).difference_percent();
        let d16 = BiasReport::analytic(16, 24).difference_percent();
        let d31 = BiasReport::analytic(31, 24).difference_percent();
        assert!(d5 > d16 && d16 > d31);
        assert!(d31 < 1e-4, "m=31 difference should be ~1e-5 %: {d31}");
    }

    #[test]
    fn counts_sum_to_period() {
        for (m, k) in [(6usize, 10u64), (9, 24), (13, 720)] {
            let r = BiasReport::analytic(m, k);
            assert_eq!(r.counts.iter().sum::<u64>(), (1u64 << m) - 1);
        }
    }

    #[test]
    fn circuit_block_matches_software() {
        for (m, k) in [(5usize, 24u64), (8, 10), (10, 3)] {
            let mut b = Builder::new();
            let x = b.input_bus("x", m);
            let out = build_random_integer(&mut b, &x, k);
            b.output_bus("i", &out);
            let mut sim = Simulator::new(b.finish());
            for x_val in 0..(1u64 << m) {
                sim.set_input_u64("x", x_val);
                sim.eval();
                assert_eq!(
                    sim.read_output("i").to_u64(),
                    Some(random_integer(m, x_val, k)),
                    "m={m} k={k} x={x_val}"
                );
            }
        }
    }

    #[test]
    fn lfsr_random_below_stays_in_range() {
        let mut src = LfsrRandomBelow::new(16, 77);
        for k in 1..40u64 {
            for _ in 0..50 {
                assert!(src.next_below(k) < k);
            }
        }
    }

    #[test]
    fn k_one_always_zero() {
        let r = BiasReport::analytic(8, 1);
        assert_eq!(r.counts, vec![255]);
        assert_eq!(random_integer(8, 200, 1), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the number")]
    fn k_larger_than_period_rejected() {
        BiasReport::analytic(4, 16);
    }
}
