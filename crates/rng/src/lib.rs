#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Randomness sources for the paper's Section III generators.
//!
//! The hardware side of the paper uses per-stage LFSRs feeding a
//! "multiply by k, shift right by m, truncate" block (Fig. 2) to produce
//! random integers in `[0, k)`. This crate provides:
//!
//! - [`Lfsr`]: a software-stepped Fibonacci LFSR with the standard
//!   maximal-length tap table for widths 2…64 ([`taps::max_len_taps`]),
//!   plus [`lfsr::GaloisLfsr`] for cross-checking;
//! - [`lfsr::build_lfsr`]: the same LFSR as a netlist (DFF ring + XOR
//!   feedback) on `hwperm-logic`, bit-equivalent to the software step —
//!   tests prove sequence equality;
//! - [`randint`]: the Fig. 2 block in software and netlist form, and
//!   [`randint::BiasReport`] computing the *exact* pigeonhole
//!   probabilities the paper discusses ("seven of the random integers
//!   are generated from two random numbers, while 17 are generated from
//!   one");
//! - [`XorShift64Star`]: a fast host-side generator implementing
//!   [`hwperm_perm::shuffle::RandomBelow`] for software baselines.

pub mod gf2;
pub mod lfsr;
pub mod randint;
pub mod taps;
mod xorshift;

pub use gf2::Gf2Poly;
pub use lfsr::{GaloisLfsr, Lfsr};
pub use randint::{random_integer, BiasReport, LfsrRandomBelow};
pub use taps::max_len_taps;
pub use xorshift::XorShift64Star;
