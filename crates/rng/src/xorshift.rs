//! Host-side pseudo-random generator for software baselines and tests.

use hwperm_bignum::Ubig;
use hwperm_perm::shuffle::RandomBelow;

/// xorshift64\* — fast, decent-quality, dependency-free. Used where the
/// experiment calls for a *software* RNG (e.g. the Xeon-side baseline of
/// Table II and the Monte-Carlo harnesses), as opposed to the hardware-
/// faithful LFSR sources.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seeds the generator (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, k)` via Lemire's multiply-shift with
    /// rejection (unbiased, unlike the hardware Fig. 2 block).
    pub fn below(&mut self, k: u64) -> u64 {
        assert!(k >= 1);
        loop {
            let x = self.next_u64();
            let m = x as u128 * k as u128;
            let low = m as u64;
            if low >= k.wrapping_neg() % k {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `Ubig` in `[0, bound)` by rejection over `bit_len(bound)`
    /// random bits.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below_ubig(&mut self, bound: &Ubig) -> Ubig {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_bits = bits - (limbs - 1) * 64;
        let top_mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| self.next_u64()).collect();
            *v.last_mut().unwrap() &= top_mask;
            let candidate = Ubig::from_limbs(v);
            if candidate < *bound {
                return candidate;
            }
        }
    }
}

impl RandomBelow for XorShift64Star {
    fn next_below(&mut self, k: u64) -> u64 {
        self.below(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64Star::new(5);
        let mut b = XorShift64Star::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut g = XorShift64Star::new(0);
        assert_ne!(g.next_u64(), 0);
    }

    #[test]
    fn below_is_in_range_and_hits_everything() {
        let mut g = XorShift64Star::new(42);
        let k = 7u64;
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = g.below(k);
            assert!(v < k);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn below_roughly_uniform() {
        let mut g = XorShift64Star::new(9);
        let k = 10u64;
        let trials = 100_000;
        let mut counts = [0u64; 10];
        for _ in 0..trials {
            counts[g.below(k) as usize] += 1;
        }
        let expected = trials as f64 / k as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        // 9 dof, 99.9th percentile ≈ 27.9.
        assert!(chi2 < 27.9, "chi2 = {chi2}");
    }

    #[test]
    fn below_ubig_respects_bound() {
        let mut g = XorShift64Star::new(3);
        let bound = Ubig::factorial(25);
        for _ in 0..50 {
            assert!(g.below_ubig(&bound) < bound);
        }
    }

    #[test]
    fn below_ubig_small_bound() {
        let mut g = XorShift64Star::new(8);
        let bound = Ubig::from(3u64);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = g.below_ubig(&bound).to_u64().unwrap();
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_ubig_zero_bound_panics() {
        XorShift64Star::new(1).below_ubig(&Ubig::zero());
    }
}
