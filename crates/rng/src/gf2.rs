//! GF(2) polynomial arithmetic for validating the LFSR tap table.
//!
//! A tap set yields a maximal-length LFSR iff its characteristic
//! polynomial is *primitive* over GF(2). Exhaustive period checks prove
//! that for small widths (tests walk the full `2^m − 1` cycle up to
//! `m = 20`); for the wide entries this module provides the strongest
//! practical static check — Rabin's irreducibility test — which every
//! primitive polynomial must pass, and which catches transcription
//! errors (a random degree-64 polynomial is reducible with probability
//! ≈ 63/64).

/// A polynomial over GF(2) of degree ≤ 127, bit `i` = coefficient of
/// `x^i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gf2Poly(pub u128);

impl Gf2Poly {
    /// The characteristic polynomial of a Fibonacci LFSR with the given
    /// 1-indexed taps: `x^m + Σ_{t ∈ taps} x^{m−t}` … with the
    /// convention used by [`crate::Lfsr`], tap `t` contributes `x^{t−?}`;
    /// concretely: `p(x) = x^m + Σ x^{m−t} | t ∈ taps, t < m` + 1.
    pub fn from_taps(m: usize, taps: &[u8]) -> Gf2Poly {
        let mut bits = (1u128 << m) | 1; // x^m + 1 base (tap m and x^0)
        for &t in taps {
            let t = t as usize;
            if t < m {
                bits |= 1u128 << (m - t);
            }
        }
        Gf2Poly(bits)
    }

    /// Degree of the polynomial (`0` for constants).
    pub fn degree(self) -> usize {
        (127 - self.0.leading_zeros()) as usize
    }

    /// Product modulo `modulus` (carry-less multiply + reduction).
    pub fn mulmod(self, rhs: Gf2Poly, modulus: Gf2Poly) -> Gf2Poly {
        let m = modulus.degree();
        let mut acc = 0u128;
        let mut a = self.0;
        let mut b = rhs.0;
        while b != 0 {
            if b & 1 == 1 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if (a >> m) & 1 == 1 {
                a ^= modulus.0;
            }
        }
        // acc is already reduced because every shift of `a` was.
        Gf2Poly(acc)
    }

    /// `x^(2^k) mod modulus`, by repeated squaring of `x`.
    pub fn x_pow_pow2(k: usize, modulus: Gf2Poly) -> Gf2Poly {
        let mut acc = Gf2Poly(0b10); // x
        for _ in 0..k {
            acc = acc.mulmod(acc, modulus);
        }
        acc
    }

    /// Polynomial GCD over GF(2).
    pub fn gcd(self, other: Gf2Poly) -> Gf2Poly {
        let (mut a, mut b) = (self.0, other.0);
        while b != 0 {
            // a mod b by long division.
            let db = 127 - b.leading_zeros();
            loop {
                if a == 0 {
                    break;
                }
                let da = 127 - a.leading_zeros();
                if da < db {
                    break;
                }
                a ^= b << (da - db);
            }
            std::mem::swap(&mut a, &mut b);
        }
        Gf2Poly(a)
    }

    /// Rabin irreducibility test for a degree-`m` polynomial:
    /// `x^(2^m) ≡ x (mod p)` and `gcd(x^(2^(m/q)) − x, p) = 1` for every
    /// prime divisor `q` of `m`.
    pub fn is_irreducible(self) -> bool {
        let m = self.degree();
        if m == 0 || self.0 & 1 == 0 {
            return false; // divisible by x
        }
        let x = Gf2Poly(0b10);
        if Gf2Poly::x_pow_pow2(m, self) != x {
            return false;
        }
        for q in prime_divisors(m) {
            let probe = Gf2Poly(Gf2Poly::x_pow_pow2(m / q, self).0 ^ x.0);
            if probe.0 != 0 && self.gcd(probe).degree() != 0 {
                return false;
            }
        }
        true
    }
}

/// Distinct prime divisors of `n`.
fn prime_divisors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taps::max_len_taps;

    #[test]
    fn known_irreducible_polynomials() {
        // x^2 + x + 1, x^3 + x + 1, x^4 + x + 1, x^8+x^4+x^3+x^2+1 (AES).
        for bits in [0b111u128, 0b1011, 0b10011, 0b1_0001_1101] {
            assert!(Gf2Poly(bits).is_irreducible(), "{bits:#b}");
        }
    }

    #[test]
    fn known_reducible_polynomials() {
        // x^2 (divisible by x), x^2 + 1 = (x+1)^2, x^4 + x^2 + 1 = (x^2+x+1)^2.
        for bits in [0b100u128, 0b101, 0b10101] {
            assert!(!Gf2Poly(bits).is_irreducible(), "{bits:#b}");
        }
    }

    #[test]
    fn mulmod_agrees_with_small_field() {
        // In GF(8) = GF(2)[x]/(x^3+x+1): (x+1)(x^2+1) = x^3+x^2+x+1
        // ≡ x^2 (mod x^3+x+1) since x^3 ≡ x+1.
        let p = Gf2Poly(0b1011);
        let r = Gf2Poly(0b011).mulmod(Gf2Poly(0b101), p);
        assert_eq!(r, Gf2Poly(0b100));
    }

    #[test]
    fn gcd_of_coprime_is_one() {
        let a = Gf2Poly(0b111); // x^2+x+1
        let b = Gf2Poly(0b1011); // x^3+x+1
        assert_eq!(a.gcd(b).degree(), 0);
        // gcd(p, p) = p.
        assert_eq!(a.gcd(a), a);
    }

    #[test]
    fn every_table_entry_is_irreducible() {
        // The static check covering all widths, including those too wide
        // for the exhaustive period test.
        for m in 2..=64usize {
            let p = Gf2Poly::from_taps(m, max_len_taps(m));
            assert_eq!(p.degree(), m);
            assert!(p.is_irreducible(), "width {m} tap polynomial is reducible");
        }
    }

    #[test]
    fn prime_divisor_helper() {
        assert_eq!(prime_divisors(1), Vec::<usize>::new());
        assert_eq!(prime_divisors(12), vec![2, 3]);
        assert_eq!(prime_divisors(64), vec![2]);
        assert_eq!(prime_divisors(61), vec![61]);
    }
}
