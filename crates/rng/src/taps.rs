//! Maximal-length LFSR feedback taps.
//!
//! One primitive-polynomial tap set per register width, from the standard
//! table (Xilinx XAPP 052 / Ward & Molteno). Tap positions are 1-indexed
//! bit numbers; an `m`-bit Fibonacci LFSR XORs the listed bits to form
//! the new bit 1 after the left shift, and visits all `2^m − 1` nonzero
//! states. Widths 2…20 are verified exhaustively in tests; wider entries
//! are covered by statistical tests.

/// Maximal-length tap positions (1-indexed) for an `m`-bit LFSR.
///
/// # Panics
/// Panics if `m` is outside `2..=64`.
pub fn max_len_taps(m: usize) -> &'static [u8] {
    assert!((2..=64).contains(&m), "LFSR width {m} unsupported (2..=64)");
    TAPS[m - 2]
}

/// `TAPS[m - 2]` is the tap list for width `m`.
const TAPS: [&[u8]; 63] = [
    &[2, 1],              // m = 2
    &[3, 2],              // 3
    &[4, 3],              // 4
    &[5, 3],              // 5
    &[6, 5],              // 6
    &[7, 6],              // 7
    &[8, 6, 5, 4],        // 8
    &[9, 5],              // 9
    &[10, 7],             // 10
    &[11, 9],             // 11
    &[12, 11, 10, 4],     // 12
    &[13, 12, 11, 8],     // 13
    &[14, 13, 12, 2],     // 14
    &[15, 14],            // 15
    &[16, 15, 13, 4],     // 16
    &[17, 14],            // 17
    &[18, 11],            // 18
    &[19, 18, 17, 14],    // 19
    &[20, 17],            // 20
    &[21, 19],            // 21
    &[22, 21],            // 22
    &[23, 18],            // 23
    &[24, 23, 22, 17],    // 24
    &[25, 22],            // 25
    &[26, 6, 2, 1],       // 26
    &[27, 5, 2, 1],       // 27
    &[28, 25],            // 28
    &[29, 27],            // 29
    &[30, 6, 4, 1],       // 30
    &[31, 28],            // 31
    &[32, 22, 2, 1],      // 32
    &[33, 20],            // 33
    &[34, 27, 2, 1],      // 34
    &[35, 33],            // 35
    &[36, 25],            // 36
    &[37, 5, 4, 3, 2, 1], // 37
    &[38, 6, 5, 1],       // 38
    &[39, 35],            // 39
    &[40, 38, 21, 19],    // 40
    &[41, 38],            // 41
    &[42, 41, 20, 19],    // 42
    &[43, 42, 38, 37],    // 43
    &[44, 43, 18, 17],    // 44
    &[45, 44, 42, 41],    // 45
    &[46, 45, 26, 25],    // 46
    &[47, 42],            // 47
    &[48, 47, 21, 20],    // 48
    &[49, 40],            // 49
    &[50, 49, 24, 23],    // 50
    &[51, 50, 36, 35],    // 51
    &[52, 49],            // 52
    &[53, 52, 38, 37],    // 53
    &[54, 53, 18, 17],    // 54
    &[55, 31],            // 55
    &[56, 55, 35, 34],    // 56
    &[57, 50],            // 57
    &[58, 39],            // 58
    &[59, 58, 38, 37],    // 59
    &[60, 59],            // 60
    &[61, 60, 46, 45],    // 61
    &[62, 61, 6, 5],      // 62
    &[63, 62],            // 63
    &[64, 63, 61, 60],    // 64
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_width_has_taps_with_highest_bit() {
        for m in 2..=64 {
            let taps = max_len_taps(m);
            assert!(!taps.is_empty());
            assert_eq!(
                taps[0] as usize, m,
                "first tap must be the MSB for width {m}"
            );
            assert!(taps.iter().all(|&t| t >= 1 && t as usize <= m));
            // Strictly decreasing, no duplicates.
            assert!(taps.windows(2).all(|w| w[0] > w[1]), "width {m}");
            // Even number of taps... actually the tap count including the
            // implicit x^0 term must be even for a primitive polynomial;
            // listed taps are therefore an even count only when the table
            // follows the 2-or-4 convention:
            assert!(taps.len() % 2 == 0, "width {m} has odd tap count");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn width_one_rejected() {
        max_len_taps(1);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn width_65_rejected() {
        max_len_taps(65);
    }
}
