#![forbid(unsafe_code)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the (small) subset of the proptest 1.x API the workspace
//! actually uses: the [`proptest!`] macro, `any::<T>()`, integer-range
//! and `prop::collection::vec` strategies, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - **Deterministic**: cases are generated from a fixed per-test seed
//!   (hash of the test name), so failures reproduce exactly in CI.
//! - **No shrinking**: a failing case reports its inputs via the normal
//!   panic message but is not minimized.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Test-runner plumbing: the deterministic RNG behind every strategy.
pub mod test_runner {
    /// Splitmix64-based deterministic generator.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// RNG seeded from a test name (stable across runs/platforms).
        pub fn for_test(name: &str) -> Rng {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Rng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Per-`proptest!`-block configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Mirror of `ProptestConfig::with_cases`.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Strategy trait and combinators.
pub mod strategy {
    use super::test_runner::Rng;

    /// A generator of values for property tests. Unlike real proptest
    /// there is no value tree: strategies produce values directly.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub use strategy::{Just, Strategy};

/// `any::<T>()` support.
pub mod arbitrary {
    use super::test_runner::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut Rng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut Rng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut Rng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut Rng) -> u16 {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut Rng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut Rng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T` (uniform over the type's range).
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut test_runner::Rng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut test_runner::Rng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $ty
            }
        }

        impl Strategy for RangeFrom<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut test_runner::Rng) -> $ty {
                let lo = self.start as u128;
                let span = <$ty>::MAX as u128 - lo + 1;
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut test_runner::Rng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        let raw: u128 = arbitrary::Arbitrary::arbitrary(rng);
        self.start + raw % span
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut test_runner::Rng) -> u128 {
        let raw: u128 = arbitrary::Arbitrary::arbitrary(rng);
        raw.max(self.start)
    }
}

/// The `prop::` module namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as a vec-length specification.
        pub trait IntoSizeRange {
            /// Inclusive `(min, max)` lengths.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// Strategy for vectors with element strategy `S`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
                let len = self.min + (rng.below((self.max - self.min + 1) as u64) as usize);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Must be used directly in a `proptest!` body (expands to `return`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::Rng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Closure so `prop_assume!` can skip the case early.
                    let mut __run = || $body;
                    __run();
                }
            }
        )*
    };
}

/// The `proptest!` macro: generates one `#[test]` fn per property, each
/// running `cases` deterministic iterations of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = <$crate::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 2usize..=8, b in 5u64..100, c in 1u64..) {
            prop_assert!((2..=8).contains(&a));
            prop_assert!((5..100).contains(&b));
            prop_assert!(c >= 1);
        }

        #[test]
        fn vec_lengths_respect_spec(v in prop::collection::vec(any::<u64>(), 1..4)) {
            prop_assert!((1..=3).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(x in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }

        #[test]
        fn assume_skips_cases(x in any::<u64>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::Rng::for_test("t");
        let mut b = crate::test_runner::Rng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
