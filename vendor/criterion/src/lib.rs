#![forbid(unsafe_code)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset of the criterion 0.5 API the workspace's
//! benches use: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark body is warmed up
//! once, then timed over an adaptive iteration count targeting ~200 ms
//! of wall clock, and the mean per-iteration time is printed. There are
//! no statistics, plots, or baselines — enough to compare orders of
//! magnitude and to keep `cargo bench` functional offline.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, displayed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (group name supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the body.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`: one warm-up call, then an adaptive batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up (also primes caches/allocations)
                        // Estimate cost, then size the batch for ~200 ms total.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean = total / iters as u32;
        self.iters = iters;
    }
}

fn print_result(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = b.mean;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  ({per_sec:.3e} elem/s)")
        }
        Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  ({per_sec:.3e} B/s)")
        }
        _ => String::new(),
    };
    println!("{id:<48} {per_iter:>12.3?}/iter  [{} iters]{rate}", b.iters);
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        print_result(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        print_result(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        print_result(&id.to_string(), &b, None);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_body() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("unrank", 8).to_string(), "unrank/8");
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
    }
}
