//! Umbrella crate for the reproduction of Butler & Sasao, *Hardware
//! Index to Permutation Converter* (RAW/IPDPS 2012).
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests read naturally; downstream users would normally
//! depend on `hwperm-core` (high-level API) or the individual crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub use hwperm_bdd as bdd;
pub use hwperm_bignum as bignum;
pub use hwperm_circuits as circuits;
pub use hwperm_core as core;
pub use hwperm_factoradic as factoradic;
pub use hwperm_hash as hash;
pub use hwperm_logic as logic;
pub use hwperm_perm as perm;
pub use hwperm_rng as rng;
pub use hwperm_verify as verify;
